(** The OMOS namespace.

    "OMOS maintains and exports a hierarchical namespace, whose names
    represent meta-objects, executable code fragments, or directories
    of other objects." *)

exception Namespace_error of string

type entry =
  | Fragment of Sof.Object_file.t (* a relocatable, e.g. /obj/ls.o *)
  | Meta of Blueprint.Meta.t (* a meta-object *)
  | Directory of (string, entry) Hashtbl.t

type t = { root : (string, entry) Hashtbl.t }

let create () : t = { root = Hashtbl.create 16 }

let split_path (path : string) : string list =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let rec lookup_in dir = function
  | [] -> Some (Directory dir)
  | p :: rest -> (
      match Hashtbl.find_opt dir p with
      | Some (Directory d) -> lookup_in d rest
      | Some e -> if rest = [] then Some e else None
      | None -> None)

let lookup (t : t) (path : string) : entry option = lookup_in t.root (split_path path)

let exists (t : t) (path : string) : bool = lookup t path <> None

(* Bind an entry at a path, creating directories. *)
let bind (t : t) (path : string) (e : entry) : unit =
  match List.rev (split_path path) with
  | [] -> raise (Namespace_error "cannot bind /")
  | name :: rev_dir ->
      let rec go dir = function
        | [] -> Hashtbl.replace dir name e
        | p :: rest -> (
            match Hashtbl.find_opt dir p with
            | Some (Directory d) -> go d rest
            | Some _ ->
                raise (Namespace_error (path ^ ": component is not a directory"))
            | None ->
                let d = Hashtbl.create 8 in
                Hashtbl.replace dir p (Directory d);
                go d rest)
      in
      go t.root (List.rev rev_dir)

let bind_fragment (t : t) (path : string) (o : Sof.Object_file.t) : unit =
  bind t path (Fragment o)

let bind_meta (t : t) (path : string) (m : Blueprint.Meta.t) : unit = bind t path (Meta m)

let unbind (t : t) (path : string) : unit =
  match List.rev (split_path path) with
  | [] -> raise (Namespace_error "cannot unbind /")
  | name :: rev_dir -> (
      match lookup_in t.root (List.rev rev_dir) with
      | Some (Directory d) -> Hashtbl.remove d name
      | _ -> raise (Namespace_error (path ^ ": no such directory")))

(** Entries of a directory, sorted. *)
let list (t : t) (path : string) : (string * [ `Fragment | `Meta | `Directory ]) list =
  match lookup t path with
  | Some (Directory d) ->
      Hashtbl.fold
        (fun name e acc ->
          let kind =
            match e with
            | Fragment _ -> `Fragment
            | Meta _ -> `Meta
            | Directory _ -> `Directory
          in
          (name, kind) :: acc)
        d []
      |> List.sort compare
  | Some _ -> raise (Namespace_error (path ^ ": not a directory"))
  | None -> raise (Namespace_error (path ^ ": no such directory"))

(** All meta-object paths (for administrative listings). *)
let all_metas (t : t) : string list =
  let out = ref [] in
  let rec walk prefix dir =
    Hashtbl.iter
      (fun name e ->
        let path = prefix ^ "/" ^ name in
        match e with
        | Meta _ -> out := path :: !out
        | Directory d -> walk path d
        | Fragment _ -> ())
      dir
  in
  walk "" t.root;
  List.sort compare !out
