(** Stub generation: dispatch tables, PLT entries, and partial-image
    client stubs — all real SVM code.

    Both flavours share one shape: indirect through a private slot
    word, trapping to a binder syscall on first use and tail-jumping
    thereafter. The difference is which runtime the trap reaches and
    what it charges. *)

(** Instructions per stub. *)
val stub_len : int

(** Instructions executed per call through an already-bound stub — the
    steady-state dispatch-table overhead. *)
val bound_path_instrs : int

type import = { imp_name : string; imp_stub : string; imp_slot : string }

(** Names an import's stub ([name$stub]) and slot ([name$slot]). *)
val import_of_name : string -> import

(** PLT + GOT object for the baseline dynamic scheme
    (traps to {!Simos.Syscall.plt_bind}). *)
val plt_object : import list -> Sof.Object_file.t

(** Client stubs for the OMOS partial-image scheme
    (traps to {!Simos.Syscall.omos_load_library}). *)
val omos_stub_object : import list -> Sof.Object_file.t

(** Rewire a client module so its references to the imported functions
    go through the stubs ([f -> f$stub], references only). *)
val divert_imports : Jigsaw.Module_ops.t -> import list -> Jigsaw.Module_ops.t

(** Memory consumed by dispatch machinery for [n] imports (stub code +
    slots), in bytes — the Kohl/Paxson measurement. *)
val dispatch_bytes : int -> int
