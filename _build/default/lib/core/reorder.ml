(** Profile-driven function reordering (paper §4.1 and [14]).

    "One such optimization is reordering code based on function usage in
    order to improve locality of reference. OMOS can automatically
    generate implementations that will produce monitoring data, which it
    will then use to derive a preferred routine order. This reordering
    benefits both cache performance and paging behavior."

    The input is a call trace from {!Monitor}; the output is a new
    fragment order for a library built at per-function granularity: the
    routines that actually ran are packed together at the front (in
    first-call order, so startup touches pages sequentially), the cold
    bulk behind them. *)

(** How the preferred order is derived from the trace. *)
type strategy =
  | First_call (* pack in order of first use: startup touches pages sequentially *)
  | Call_frequency (* pack hottest first: steady-state locality *)

(** Derive the preferred order of fragment names.

    [order ~trace ~all] returns all function names, used-first (ordered
    per [strategy]), then unused in their original order. *)
let order ?(strategy = First_call) ~(trace : Monitor.trace) ~(all : string list) ()
    : string list =
  let used =
    match strategy with
    | First_call -> Monitor.first_call_order trace
    | Call_frequency ->
        let counts = Hashtbl.create 16 in
        List.iter
          (fun id ->
            let n = trace.Monitor.names.(id) in
            Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
          (Monitor.call_sequence trace);
        Hashtbl.fold (fun n c acc -> (n, c) :: acc) counts []
        |> List.sort (fun (n1, c1) (n2, c2) ->
               match compare c2 c1 with 0 -> compare n1 n2 | o -> o)
        |> List.map fst
  in
  let used_set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace used_set n ()) used;
  used @ List.filter (fun n -> not (Hashtbl.mem used_set n)) all

(* Which fragment defines which exported functions. *)
let frag_functions (o : Sof.Object_file.t) : string list =
  List.filter_map
    (fun (s : Sof.Symbol.t) ->
      if Sof.Symbol.is_exported s && s.Sof.Symbol.kind = Sof.Symbol.Text then
        Some s.Sof.Symbol.name
      else None)
    o.Sof.Object_file.symbols

(** [reorder_fragments ~order frags] rearranges per-function fragments
    so that the fragment defining the i-th name of [order] comes i-th.
    Fragments defining none of the named functions (data-only, locals)
    keep their relative order at the end. *)
let reorder_fragments ~(order : string list) (frags : Sof.Object_file.t list) :
    Sof.Object_file.t list =
  let by_function = Hashtbl.create 64 in
  List.iter
    (fun o -> List.iter (fun f -> Hashtbl.replace by_function f o) (frag_functions o))
    frags;
  let placed = Hashtbl.create 64 in
  let picked =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt by_function name with
        | Some o when not (Hashtbl.mem placed o.Sof.Object_file.name) ->
            Hashtbl.replace placed o.Sof.Object_file.name ();
            Some o
        | _ -> None)
      order
  in
  let rest =
    List.filter (fun o -> not (Hashtbl.mem placed o.Sof.Object_file.name)) frags
  in
  picked @ rest

(** End-to-end: monitor a run, derive the order, return reordered
    fragments. [run] must execute the workload against the monitored
    module (the caller owns process setup). *)
let from_trace ?(strategy = First_call) ~(trace : Monitor.trace)
    (frags : Sof.Object_file.t list) : Sof.Object_file.t list =
  let all = List.concat_map frag_functions frags in
  reorder_fragments ~order:(order ~strategy ~trace ~all ()) frags

(** Pages of text the first [n] fragments span — a quick locality
    metric for tests and the ablation bench. *)
let prefix_text_pages (frags : Sof.Object_file.t list) (names : string list) : int =
  let wanted = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace wanted n ()) names;
  let off = ref 0 in
  let lo = ref max_int and hi = ref 0 in
  List.iter
    (fun (o : Sof.Object_file.t) ->
      let size = Bytes.length o.Sof.Object_file.text in
      if List.exists (Hashtbl.mem wanted) (frag_functions o) then begin
        lo := min !lo !off;
        hi := max !hi (!off + size)
      end;
      off := !off + size)
    frags;
  if !hi = 0 then 0
  else ((!hi + Simos.Cost.page_size - 1) / Simos.Cost.page_size)
       - (!lo / Simos.Cost.page_size)
