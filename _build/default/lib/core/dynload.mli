(** Dynamic loading of classes into executing programs (paper §5), and
    the unlinking extension (§9). *)

(** The in-simulation syscall number: r1 = blueprint string address,
    r2 = symbol name address; returns the bound address in r0. *)
val dynload_syscall : int

exception Dynload_error of string

type t

val create : Server.t -> t

(** [load t p ~client_images ~graph ~symbols] instantiates [graph],
    binds it against the process's images (client first, then
    previously loaded classes — so new classes can call back into the
    client), maps it into [p] at constraint-chosen addresses, and
    returns the bound values of [symbols].
    @raise Dynload_error if a requested symbol is not bound. *)
val load :
  t ->
  Simos.Proc.t ->
  client_images:Linker.Image.t list ->
  graph:Blueprint.Mgraph.node ->
  symbols:string list ->
  (string * int) list

(** [unload t p img] dynamically unlinks a previously loaded class: its
    regions are unmapped and its arena reservations released.
    @raise Dynload_error if [img] was not loaded into [p]. *)
val unload : t -> Simos.Proc.t -> Linker.Image.t -> unit

(** Images currently loaded into [p] through this loader. *)
val loaded : t -> Simos.Proc.t -> Linker.Image.t list

(** Install the dynload syscall on the upcall registry.
    [client_images_of] supplies the images a process was launched with,
    so loaded classes can bind to client symbols. *)
val attach :
  t -> Upcalls.t -> client_images_of:(Simos.Proc.t -> Linker.Image.t list) -> unit
