(** Profile-driven function reordering (paper §4.1 and [14]).

    "One such optimization is reordering code based on function usage in
    order to improve locality of reference. OMOS can automatically
    generate implementations that will produce monitoring data, which it
    will then use to derive a preferred routine order. This reordering
    benefits both cache performance and paging behavior."

    The input is a call trace from {!Monitor}; the output is a new
    fragment order for a library built at per-function granularity: the
    routines that actually ran are packed together at the front (in
    first-call order, so startup touches pages sequentially), the cold
    bulk behind them. *)

type strategy = First_call | Call_frequency
val order :
  ?strategy:strategy ->
  trace:Monitor.trace -> all:string list -> unit -> string list
val frag_functions : Sof.Object_file.t -> string list
val reorder_fragments :
  order:string list -> Sof.Object_file.t list -> Sof.Object_file.t list
val from_trace :
  ?strategy:strategy ->
  trace:Monitor.trace ->
  Sof.Object_file.t list -> Sof.Object_file.t list
val prefix_text_pages : Sof.Object_file.t list -> string list -> int
