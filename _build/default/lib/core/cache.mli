(** The image cache (paper §3.1: "OMOS treats executable images as a
    cache … By treating executables as a cache, OMOS avoids unnecessary
    repetition of work").

    Entries are keyed by the construction digest (meta-object graph +
    specialization); several entries may exist per key when address
    conflicts forced alternate placements. *)

type entry = {
  key : string;  (** construction digest *)
  image : Linker.Image.t;
  text_base : int;
  data_base : int;
  disk_bytes : int;  (** serialized size (disk-consumption accounting) *)
  mutable hits : int;
}

type t

val create : unit -> t

(** All cached placements of a construction (no hit/miss counting). *)
val candidates : t -> string -> entry list

(** [find t key ~acceptable] returns a cached image whose placement
    satisfies [acceptable], counting a hit or miss. *)
val find : t -> string -> acceptable:(entry -> bool) -> entry option

(** Record a freshly built image. *)
val insert :
  t -> key:string -> text_base:int -> data_base:int -> Linker.Image.t -> entry

(** Drop every placement of a construction (its sources changed). *)
val invalidate : t -> string -> unit

val clear : t -> unit

(** [evict_to_budget t ~bytes] trims the cache to at most [bytes] of
    serialized image data, least-used entries first. Returns the
    evicted entries so the caller can release their reservations. *)
val evict_to_budget : t -> bytes:int -> entry list

type stats = {
  hits : int;
  misses : int;
  entries : int;  (** live entries, across all placements *)
  versions_max : int;  (** worst-case placements of one construction *)
  disk_bytes_total : int;
}

val stats : t -> stats
