(** Routing of OMOS-owned syscalls: the kernel has one upcall hook for
    syscalls at or above {!Simos.Syscall.omos_base}; this registry lets
    the independent runtime pieces (lazy-binding schemes, the monitor,
    the dynamic loader) each own their numbers. *)

type handler =
  Simos.Kernel.t -> Simos.Proc.t -> Svm.Cpu.t -> int -> Svm.Cpu.sys_result

type t

(** Create the registry and install it as the kernel's upcall. Unknown
    numbers return -1 to the caller. *)
val install : Simos.Kernel.t -> t

val register : t -> int -> handler -> unit
