(** Routing of OMOS-owned syscalls.

    The kernel has a single upcall hook for syscalls at or above
    {!Simos.Syscall.omos_base}; this registry lets the independent
    runtime pieces (lazy-binding schemes, the monitor, the dynamic
    loader) each own their numbers. *)

type handler =
  Simos.Kernel.t -> Simos.Proc.t -> Svm.Cpu.t -> int -> Svm.Cpu.sys_result

type t = { handlers : (int, handler) Hashtbl.t }

(** Create the registry and install it as the kernel's upcall. Unknown
    numbers return -1 to the caller. *)
let install (k : Simos.Kernel.t) : t =
  let t = { handlers = Hashtbl.create 8 } in
  Simos.Kernel.set_upcall k (fun k p cpu n ->
      match Hashtbl.find_opt t.handlers n with
      | Some f -> f k p cpu n
      | None ->
          Svm.Cpu.set_reg cpu Svm.Isa.reg_ret (-1l);
          Svm.Cpu.Sys_continue);
  t

let register (t : t) (n : int) (f : handler) : unit = Hashtbl.replace t.handlers n f
