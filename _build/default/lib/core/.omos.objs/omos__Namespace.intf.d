lib/core/namespace.mli: Blueprint Hashtbl Sof
