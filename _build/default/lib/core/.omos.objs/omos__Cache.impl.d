lib/core/cache.ml: Bytes Hashtbl Linker List
