lib/core/upcalls.ml: Hashtbl Simos Svm
