lib/core/stubs.mli: Jigsaw Sof
