lib/core/server.ml: Blueprint Bytes Cache Constraints Format Jigsaw Linker List Namespace Option Simos Sof String
