lib/core/reorder.ml: Array Bytes Hashtbl List Monitor Option Simos Sof
