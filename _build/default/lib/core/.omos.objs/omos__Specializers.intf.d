lib/core/specializers.mli: Monitor Server Upcalls
