lib/core/upcalls.mli: Simos Svm
