lib/core/server.mli: Blueprint Cache Constraints Jigsaw Linker Namespace Simos Sof
