lib/core/world.mli: Schemes Server Simos Sof Specializers Upcalls
