lib/core/monitor.mli: Jigsaw Upcalls
