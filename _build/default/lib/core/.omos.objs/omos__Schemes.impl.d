lib/core/schemes.ml: Array Blueprint Boot Bytes Cache Digest Hashtbl Int32 Jigsaw Linker List Printf Server Simos Sof String Stubs Svm Upcalls
