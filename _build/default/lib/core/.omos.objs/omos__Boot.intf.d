lib/core/boot.mli: Server Simos
