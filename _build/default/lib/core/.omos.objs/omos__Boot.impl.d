lib/core/boot.ml: Bytes Hashtbl List Printf Server Simos
