lib/core/schemes.mli: Blueprint Hashtbl Linker Server Simos Sof Stubs Upcalls
