lib/core/world.ml: Lazy List Printf Schemes Server Simos Sof Specializers Upcalls Workloads
