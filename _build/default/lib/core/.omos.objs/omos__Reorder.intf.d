lib/core/reorder.mli: Monitor Sof
