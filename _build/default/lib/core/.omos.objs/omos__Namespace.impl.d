lib/core/namespace.ml: Blueprint Hashtbl List Sof String
