lib/core/monitor.ml: Array Hashtbl Int32 Jigsaw List Sof Str Svm Upcalls
