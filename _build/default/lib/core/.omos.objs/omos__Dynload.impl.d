lib/core/dynload.ml: Blueprint Constraints Hashtbl Int32 Jigsaw Linker List Printf Server Simos Svm Upcalls
