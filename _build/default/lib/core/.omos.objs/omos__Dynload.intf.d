lib/core/dynload.mli: Blueprint Linker Server Simos Upcalls
