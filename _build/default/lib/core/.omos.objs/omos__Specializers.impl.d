lib/core/specializers.ml: Blueprint Jigsaw List Monitor Server Sof Str Stubs Upcalls
