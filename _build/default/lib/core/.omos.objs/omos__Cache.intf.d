lib/core/cache.mli: Linker
