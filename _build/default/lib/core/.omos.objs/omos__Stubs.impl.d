lib/core/stubs.ml: Int32 Jigsaw List Simos Sof Str Svm
