(** Stub generation: dispatch tables, PLT entries, and partial-image
    client stubs.

    Two flavours are generated here, both real SVM code:

    - {!plt_object} — the baseline dynamic scheme's lazy-binding stubs
      (SunOS/HP-UX style): each imported function gets a stub that
      indirects through a private GOT slot, trapping to the runtime
      binder on first use. This is the "dispatch table" whose memory and
      per-call overhead the paper holds against traditional shared
      libraries.

    - {!omos_stub_object} — the partial-image scheme's stubs: "On the
      first invocation of a routine in a library, the client stub
      contacts OMOS and loads in the library"; thereafter calls go
      through an indirect branch table.

    Both stubs have the same shape (the difference is which runtime
    syscall they raise and what that runtime charges):

    {v
    0: lea  r12, slot      ; address of this import's table slot
    1: ld   r11, [r12]
    2: jnz  r11, +24       ; bound: skip to the indirect jump
    3: movi r1, index      ; import index for the binder
    4: sys  <bind>
    5: ld   r11, [r12]     ; binder patched the slot
    6: jmpr r11            ; tail-jump: ra still points at the caller
    v} *)

let stub_len = 7 (* instructions per stub *)

(** Instructions executed per call through an already-bound stub
    (0,1,2,6) — the steady-state dispatch-table overhead. *)
let bound_path_instrs = 4

type import = { imp_name : string; imp_stub : string; imp_slot : string }

(** Names an import's stub and slot symbols. *)
let import_of_name (name : string) : import =
  { imp_name = name; imp_stub = name ^ "$stub"; imp_slot = name ^ "$slot" }

(* Shared emitter for both stub flavours. *)
let emit_stubs ~(obj_name : string) ~(bind_syscall : int) (imports : import list) :
    Sof.Object_file.t =
  let a = Sof.Asm.create obj_name in
  List.iteri
    (fun index imp ->
      Sof.Asm.label a imp.imp_stub;
      Sof.Asm.lea a 12 imp.imp_slot;
      Sof.Asm.instr a (Svm.Isa.Ld (11, 12, 0l));
      Sof.Asm.instr a (Svm.Isa.Jnz (11, Int32.of_int (3 * Svm.Isa.width)));
      Sof.Asm.instr a (Svm.Isa.Movi (1, Int32.of_int index));
      Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int bind_syscall));
      Sof.Asm.instr a (Svm.Isa.Ld (11, 12, 0l));
      Sof.Asm.instr a (Svm.Isa.Jmpr 11))
    imports;
  (* the table: one private writable word per import *)
  List.iter
    (fun imp ->
      Sof.Asm.data_label a imp.imp_slot;
      Sof.Asm.data_word a 0l)
    imports;
  Sof.Asm.finish a

(** PLT + GOT object for the baseline dynamic scheme. *)
let plt_object (imports : import list) : Sof.Object_file.t =
  emit_stubs ~obj_name:"(plt)" ~bind_syscall:Simos.Syscall.plt_bind imports

(** Client stubs for the OMOS partial-image scheme. *)
let omos_stub_object (imports : import list) : Sof.Object_file.t =
  emit_stubs ~obj_name:"(omos-stubs)" ~bind_syscall:Simos.Syscall.omos_load_library
    imports

(** Rewire a client module so its references to the imported functions
    go through the stubs: [f -> f$stub] on references only. *)
let divert_imports (client : Jigsaw.Module_ops.t) (imports : import list) :
    Jigsaw.Module_ops.t =
  List.fold_left
    (fun m imp ->
      Jigsaw.Module_ops.rename ~scope:Jigsaw.Module_ops.Refs_only
        (Jigsaw.Select.compile ("^" ^ Str.quote imp.imp_name ^ "$"))
        imp.imp_stub m)
    client imports

(** Memory consumed by dispatch machinery for [n] imports: stub code +
    table slots, in bytes — the Kohl/Paxson measurement (E2). *)
let dispatch_bytes (n : int) : int = n * ((stub_len * Svm.Isa.width) + 4)
