(** The server's specialization styles (paper §3.4, §4.2):
    ["lib-dynamic"] (stub generation), ["lib-dynamic-impl"] (the shared
    implementation), and ["monitor"] (logging-wrapper interposition;
    pass the argument ["exits"] for entry+exit wrappers). *)

type t = {
  server : Server.t;
  upcalls : Upcalls.t;
  mutable last_trace : Monitor.trace option;
}

(** The trace produced by the most recent "monitor" evaluation. *)
val last_trace : t -> Monitor.trace option

(** Register the styles on the server and return the handle. *)
val install : Server.t -> Upcalls.t -> t
