(** The shared-library schemes under comparison (paper §4, Table 1).

    Four ways to turn "client + libraries" into a running process:
    traditional static linking, the traditional dynamic scheme
    (SunOS/HP-UX-style PLT stubs and lazy binding), OMOS self-contained
    libraries (bootstrap or integrated exec), and OMOS partial-image
    libraries. All run the same client code on the same simulated OS;
    they differ only in linking/loading mechanics. *)

exception Scheme_error of string

(** Which lazy-binding runtime a process uses. *)
type flavor = Plt | Omos_stub

(** Per-process lazy-binding state. *)
type proc_rt = {
  flavor : flavor;
  imports : Stubs.import array;
  mutable resolve : string -> int option;
  slot_addr : string -> int;
  lib_paths : string list;
  expected_version : string;
  mutable libs_mapped : bool;
  mutable binds : int;
}

(** Interface version of a library set: a digest of the exported names.
    Recorded in partial-image clients and checked at load time — the
    versioning safety the paper says "should be implemented" (§4.2). *)
val interface_version : Linker.Image.t list -> string

(** The scheme runtime: owns per-process lazy-binding state and the
    bind-trap upcalls. One per kernel. *)
type t = { server : Server.t; table : (int, proc_rt) Hashtbl.t }

(** Create the runtime and register its bind traps (either on the given
    registry or on a fresh one). *)
val runtime : ?upcalls:Upcalls.t -> Server.t -> t

(** A ready-to-run program under some scheme. *)
type program = {
  prog_name : string;
  scheme : string;
  launch : args:string list -> Simos.Proc.t;
      (** start one invocation; run it with {!Simos.Kernel.run} *)
  dispatch_bytes : int;
      (** memory overhead of dispatch machinery (stubs + slots) *)
  eager_relocs : int;
      (** eager relocation work charged per invocation (dynamic scheme) *)
  imports : int;  (** number of lazily bindable imports *)
}

(** Wrap objects as a [Merge] of leaves. *)
val graph_of_objs : Sof.Object_file.t list -> Blueprint.Mgraph.node

(** Statically link client + libraries into one traditional binary,
    with archive semantics: only the members that satisfy references
    are pulled in. Installing it pays the binary-write I/O. *)
val static_program :
  t -> name:string -> client:Sof.Object_file.t list -> libs:string list -> program

(** The traditional dynamic scheme: shared libraries at system-chosen
    addresses, per-process PLT stubs + dispatch slots (real SVM code),
    eager client data relocation and deferred per-page library
    relocation on every invocation, lazy procedure binding on first
    call. *)
val dynamic_program :
  t -> name:string -> client:Sof.Object_file.t list -> libs:string list -> program

(** How a self-contained program is started. *)
type exec_style = Bootstrap | Integrated

(** OMOS self-contained shared libraries: fully bound, cached,
    constraint-placed images, launched via the bootstrap loader or the
    OS-integrated exec. *)
val self_contained_program :
  t ->
  ?style:exec_style ->
  name:string ->
  client:Sof.Object_file.t list ->
  libs:string list ->
  unit ->
  program

(** OMOS partial-image shared libraries: a conventional executable with
    per-entry-point stubs that load the library from the server on
    first use. The client records the library interface version; a
    stale client is refused at load time. *)
val partial_image_program :
  t -> name:string -> client:Sof.Object_file.t list -> libs:string list -> program

(** Run one invocation to completion; returns (exit code, stdout) and
    reaps the process. *)
val invoke : t -> program -> args:string list -> int * string
