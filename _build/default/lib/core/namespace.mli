(** The OMOS namespace (paper §3.2): a hierarchical name space "whose
    names represent meta-objects, executable code fragments, or
    directories of other objects". *)

exception Namespace_error of string

type entry =
  | Fragment of Sof.Object_file.t  (** a relocatable, e.g. /obj/ls.o *)
  | Meta of Blueprint.Meta.t  (** a meta-object *)
  | Directory of (string, entry) Hashtbl.t

type t

val create : unit -> t
val lookup : t -> string -> entry option
val exists : t -> string -> bool

(** Bind an entry at a path, creating directories.
    @raise Namespace_error if a path component is not a directory. *)
val bind : t -> string -> entry -> unit

val bind_fragment : t -> string -> Sof.Object_file.t -> unit
val bind_meta : t -> string -> Blueprint.Meta.t -> unit
val unbind : t -> string -> unit

(** Entries of a directory, sorted. @raise Namespace_error. *)
val list : t -> string -> (string * [ `Fragment | `Meta | `Directory ]) list

(** All meta-object paths (administrative listings). *)
val all_metas : t -> string list
