(** The compiler driver: source text → SOF objects. Backs the blueprint
    [source] operator and the workload generators. *)

exception Compile_error of string

(** [compile ~name src] compiles one translation unit into one object
    file. [optimize] enables the peephole pass (the default is the
    paper's "non-optimized, debuggable" build).
    @raise Compile_error with a located message. *)
val compile : ?optimize:bool -> name:string -> string -> Sof.Object_file.t

(** Compile each function into its own object (the granularity used by
    function reordering); unit globals go into a trailing
    [.globals.o] object. Static definitions cannot be split. *)
val compile_split : ?optimize:bool -> name:string -> string -> Sof.Object_file.t list

(** Parse only (for tooling/tests). *)
val parse : string -> Ast.program
