lib/minic/codegen_items.ml: Sof Svm
