lib/minic/codegen.ml: Array Ast Codegen_items Filename Format Hashtbl Int32 List Peephole Printf Sof Svm
