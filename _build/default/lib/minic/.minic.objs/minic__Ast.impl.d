lib/minic/ast.ml:
