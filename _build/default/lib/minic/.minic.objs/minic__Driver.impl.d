lib/minic/driver.ml: Ast Codegen Lexer Parser Printf Sof
