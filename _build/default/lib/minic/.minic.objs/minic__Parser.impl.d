lib/minic/parser.ml: Ast Format Int32 Lexer List Token
