lib/minic/token.ml: Int32 Printf
