lib/minic/token.mli:
