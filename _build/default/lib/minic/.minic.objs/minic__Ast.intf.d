lib/minic/ast.mli:
