lib/minic/driver.mli: Ast Sof
