lib/minic/lexer.ml: Buffer Char Format Int32 List String Token
