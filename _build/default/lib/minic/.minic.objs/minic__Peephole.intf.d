lib/minic/peephole.mli: Codegen_items Svm
