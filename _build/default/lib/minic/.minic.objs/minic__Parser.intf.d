lib/minic/parser.mli: Ast Format Lexer Token
