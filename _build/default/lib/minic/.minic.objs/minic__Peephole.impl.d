lib/minic/peephole.ml: Codegen_items List Svm
