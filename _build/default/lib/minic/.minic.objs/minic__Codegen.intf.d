lib/minic/codegen.mli: Ast Codegen_items Format Hashtbl Sof Svm
