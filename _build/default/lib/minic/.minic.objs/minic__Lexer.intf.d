lib/minic/lexer.mli: Format Token
