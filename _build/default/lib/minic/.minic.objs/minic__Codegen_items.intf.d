lib/minic/codegen_items.mli: Sof Svm
