(** Code generation: minic AST → SOF object files.

    A classic single-pass stack-machine scheme:

    - expression results land in r1; binary operators evaluate the left
      operand, push it, evaluate the right, pop into r2, combine;
    - calling convention: caller pushes arguments right-to-left (arg0
      ends up at [sp]), issues [call], then pops them; results return
      in r0;
    - frames: callee pushes ra and fp, sets fp := sp, then reserves one
      word per local. Thus [fp+0] = saved fp, [fp+4] = saved ra,
      [fp+8+4i] = parameter i, [fp-4(i+1)] = local i;
    - references to globals and functions compile to [lea]/[call]
      instructions carrying Abs32 relocations — these are exactly the
      "external references" whose per-invocation cost the paper's
      evaluation measures. *)

exception Codegen_error of string
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
val acc : int
val tmp : int
val tm3 : int
val sp : int
val fp : int
val ra : int
val rv : int
type gkind =
    Gscalar
  | Garray
  | Gstring
  | Gfun of int
  | Gextern_var
  | Gextern_fun of int
type genv = (string, gkind) Hashtbl.t
val build_genv : Ast.program -> genv
type strings_acc = {
  prefix : string;
  mutable items : (string * string) list;
  mutable n : int;
}
type fenv = {
  genv : genv;
  locals : (string, int) Hashtbl.t;
  mutable items : Codegen_items.item list;
  mutable nlabels : int;
  mutable loop_stack : (int * int) list;
  strings : strings_acc;
  epilogue : int;
}
val emit : fenv -> Svm.Isa.instr -> unit
val emit_reloc :
  fenv -> Svm.Isa.instr -> Sof.Reloc.kind -> string -> int -> unit
val new_label : fenv -> int
val place : fenv -> int -> unit
val branch : fenv -> Codegen_items.bkind -> int -> unit
val push_reg : fenv -> int -> unit
val pop_reg : fenv -> int -> unit
val intern_string : fenv -> string -> string
val lea_global : fenv -> int -> string -> unit
val local_offset : fenv -> string -> int option
val gen_expr : fenv -> Ast.expr -> unit
val gen_base_address : fenv -> string -> unit
val check_arity : fenv -> string -> int -> unit
val gen_stmt : fenv -> Ast.stmt -> unit
val collect_decls : string list -> Ast.stmt -> string list
val emit_with_reloc :
  Sof.Asm.t -> Svm.Isa.instr -> Sof.Reloc.kind -> string -> int -> unit
val flush_items : Sof.Asm.t -> Codegen_items.item list -> unit
val gen_function :
  ?optimize:bool ->
  Sof.Asm.t -> genv -> strings:strings_acc -> Ast.func -> unit
val gen_global : Sof.Asm.t -> Ast.global -> unit
val emit_strings : Sof.Asm.t -> strings_acc -> unit
val gen :
  ?optimize:bool -> name:string -> Ast.program -> Sof.Object_file.t
val gen_split :
  ?optimize:bool ->
  name:string -> Ast.program -> Sof.Object_file.t list
