(** The buffered-emission item type shared by the code generator and
    the peephole optimizer: instructions are collected as items, local
    branches reference label ids, and byte displacements are computed
    when a function is flushed into the object assembler. *)

type item =
    Plain of Svm.Isa.instr
  | Reloc of Svm.Isa.instr * Sof.Reloc.kind * string * int
  | Bfix of bkind * int
  | Ldef of int
and bkind = Bz of int | Bnz of int | Bal
