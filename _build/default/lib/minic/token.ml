(** Tokens of the minic language. *)

type t =
  | INT (* "int" *)
  | CHAR (* "char" *)
  | EXTERN
  | STATIC
  | CTOR (* "ctor": marks a static initializer *)
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | BREAK
  | CONTINUE
  | IDENT of string
  | NUM of int32
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN (* = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP (* & *)
  | PIPE (* | *)
  | CARET (* ^ *)
  | SHL (* << *)
  | SHR (* >> *)
  | LT
  | LE
  | GT
  | GE
  | EQ (* == *)
  | NE (* != *)
  | ANDAND
  | OROR
  | BANG (* ! *)
  | EOF

let to_string = function
  | INT -> "int"
  | CHAR -> "char"
  | EXTERN -> "extern"
  | STATIC -> "static"
  | CTOR -> "ctor"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | FOR -> "for"
  | RETURN -> "return"
  | BREAK -> "break"
  | CONTINUE -> "continue"
  | IDENT s -> s
  | NUM n -> Int32.to_string n
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"
