(** Code generation: minic AST → SOF object files.

    A classic single-pass stack-machine scheme:

    - expression results land in r1; binary operators evaluate the left
      operand, push it, evaluate the right, pop into r2, combine;
    - calling convention: caller pushes arguments right-to-left (arg0
      ends up at [sp]), issues [call], then pops them; results return
      in r0;
    - frames: callee pushes ra and fp, sets fp := sp, then reserves one
      word per local. Thus [fp+0] = saved fp, [fp+4] = saved ra,
      [fp+8+4i] = parameter i, [fp-4(i+1)] = local i;
    - references to globals and functions compile to [lea]/[call]
      instructions carrying Abs32 relocations — these are exactly the
      "external references" whose per-invocation cost the paper's
      evaluation measures. *)

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

(* Register assignments (see Svm.Isa conventions). *)
let acc = Svm.Isa.reg_acc (* r1: expression results *)
let tmp = Svm.Isa.reg_tmp (* r2: second operand / addresses *)
let tm3 = 3 (* extra scratch *)
let sp = Svm.Isa.reg_sp
let fp = Svm.Isa.reg_fp
let ra = Svm.Isa.reg_ra
let rv = Svm.Isa.reg_ret (* r0 *)

(* -- global environment -------------------------------------------------- *)

type gkind =
  | Gscalar
  | Garray
  | Gstring
  | Gfun of int (* arity *)
  | Gextern_var
  | Gextern_fun of int

type genv = (string, gkind) Hashtbl.t

let build_genv (prog : Ast.program) : genv =
  let env = Hashtbl.create 32 in
  let add name k =
    if Hashtbl.mem env name then fail "duplicate global %s" name
    else Hashtbl.replace env name k
  in
  List.iter
    (fun (g : Ast.global) ->
      match g with
      | Ast.Gvar { name; _ } -> add name Gscalar
      | Ast.Garray { name; _ } -> add name Garray
      | Ast.Gstring { name; _ } -> add name Gstring
      | Ast.Gextern_var name -> add name Gextern_var
      | Ast.Gextern_fun (name, arity) -> add name (Gextern_fun arity)
      | Ast.Gfunc f -> add f.Ast.fname (Gfun (List.length f.Ast.params)))
    prog;
  env

(* -- function-body emission ----------------------------------------------- *)

(* Buffered emission with local-label fixups; the item type lives in
   Codegen_items so the peephole optimizer can share it. *)
open Codegen_items

(* String literals are interned per translation unit (labels must be
   unique across all of the unit's functions). *)
type strings_acc = {
  prefix : string;
  mutable items : (string * string) list; (* label, contents; reversed *)
  mutable n : int;
}

type fenv = {
  genv : genv;
  locals : (string, int) Hashtbl.t; (* name -> fp offset *)
  mutable items : item list; (* reversed *)
  mutable nlabels : int;
  mutable loop_stack : (int * int) list; (* (break label, continue label) *)
  strings : strings_acc;
  epilogue : int; (* label id of function epilogue *)
}

let emit (f : fenv) (i : Svm.Isa.instr) = f.items <- Plain i :: f.items
let emit_reloc (f : fenv) i kind sym addend = f.items <- Reloc (i, kind, sym, addend) :: f.items
let new_label (f : fenv) = f.nlabels <- f.nlabels + 1; f.nlabels
let place (f : fenv) (l : int) = f.items <- Ldef l :: f.items
let branch (f : fenv) (k : bkind) (l : int) = f.items <- Bfix (k, l) :: f.items

let push_reg (f : fenv) (r : int) =
  emit f (Svm.Isa.Addi (sp, sp, -4l));
  emit f (Svm.Isa.St (sp, r, 0l))

let pop_reg (f : fenv) (r : int) =
  emit f (Svm.Isa.Ld (r, sp, 0l));
  emit f (Svm.Isa.Addi (sp, sp, 4l))

let intern_string (f : fenv) (s : string) : string =
  let acc = f.strings in
  match List.find_opt (fun (_, v) -> v = s) acc.items with
  | Some (l, _) -> l
  | None ->
      acc.n <- acc.n + 1;
      let label = Printf.sprintf "str$%s$%d" acc.prefix acc.n in
      acc.items <- (label, s) :: acc.items;
      label

(* Load the address of global [name] into register [r]. *)
let lea_global (f : fenv) (r : int) (name : string) =
  emit_reloc f (Svm.Isa.Lea (r, 0l)) Sof.Reloc.Abs32 name 0

let local_offset (f : fenv) (name : string) : int option =
  Hashtbl.find_opt f.locals name

let rec gen_expr (f : fenv) (e : Ast.expr) : unit =
  match e with
  | Ast.Num n -> emit f (Svm.Isa.Movi (acc, n))
  | Ast.Str s ->
      let label = intern_string f s in
      emit_reloc f (Svm.Isa.Lea (acc, 0l)) Sof.Reloc.Abs32 label 0
  | Ast.Var name -> (
      match local_offset f name with
      | Some off -> emit f (Svm.Isa.Ld (acc, fp, Int32.of_int off))
      | None -> (
          match Hashtbl.find_opt f.genv name with
          | Some (Gscalar | Gextern_var) ->
              lea_global f tmp name;
              emit f (Svm.Isa.Ld (acc, tmp, 0l))
          | Some (Garray | Gstring) ->
              (* arrays and strings decay to their address *)
              lea_global f acc name
          | Some (Gfun _ | Gextern_fun _) ->
              (* function name used as a value: its address *)
              lea_global f acc name
          | None -> fail "undeclared variable %s" name))
  | Ast.Addr name -> (
      match local_offset f name with
      | Some _ -> fail "cannot take the address of local %s" name
      | None ->
          if Hashtbl.mem f.genv name then lea_global f acc name
          else fail "undeclared variable %s" name)
  | Ast.Index (name, idx) ->
      gen_expr f idx;
      (* r1 := index; scale to bytes *)
      emit f (Svm.Isa.Movi (tmp, 2l));
      emit f (Svm.Isa.Shl (acc, acc, tmp));
      gen_base_address f name;
      (* tmp := base *)
      emit f (Svm.Isa.Add (tmp, tmp, acc));
      emit f (Svm.Isa.Ld (acc, tmp, 0l))
  | Ast.Call (name, args) ->
      check_arity f name (List.length args);
      (* push args right-to-left *)
      List.iter
        (fun a ->
          gen_expr f a;
          push_reg f acc)
        (List.rev args);
      emit_reloc f (Svm.Isa.Call 0l) Sof.Reloc.Abs32 name 0;
      if args <> [] then
        emit f (Svm.Isa.Addi (sp, sp, Int32.of_int (4 * List.length args)));
      emit f (Svm.Isa.Mov (acc, rv))
  | Ast.Syscall (n, args) ->
      if List.length args > 4 then fail "__syscall takes at most 4 arguments";
      List.iter
        (fun a ->
          gen_expr f a;
          push_reg f acc)
        (List.rev args);
      (* args now at [sp], [sp+4], ... : load into r1..rk then pop *)
      List.iteri
        (fun i _ -> emit f (Svm.Isa.Ld (Svm.Isa.reg_arg0 + i, sp, Int32.of_int (4 * i))))
        args;
      if args <> [] then
        emit f (Svm.Isa.Addi (sp, sp, Int32.of_int (4 * List.length args)));
      emit f (Svm.Isa.Sys (Int32.of_int n));
      emit f (Svm.Isa.Mov (acc, rv))
  | Ast.Icall (target, args) ->
      (* like Call, but the target address is computed: push args,
         evaluate the target last, callr *)
      List.iter
        (fun a ->
          gen_expr f a;
          push_reg f acc)
        (List.rev args);
      gen_expr f target;
      emit f (Svm.Isa.Callr acc);
      if args <> [] then
        emit f (Svm.Isa.Addi (sp, sp, Int32.of_int (4 * List.length args)));
      emit f (Svm.Isa.Mov (acc, rv))
  | Ast.Load8 addr ->
      gen_expr f addr;
      emit f (Svm.Isa.Ldb (acc, acc, 0l))
  | Ast.Un (Ast.Neg, e1) ->
      gen_expr f e1;
      emit f (Svm.Isa.Movi (tmp, 0l));
      emit f (Svm.Isa.Sub (acc, tmp, acc))
  | Ast.Un (Ast.Not, e1) ->
      gen_expr f e1;
      emit f (Svm.Isa.Movi (tmp, 0l));
      emit f (Svm.Isa.Cmpeq (acc, acc, tmp))
  | Ast.Bin (Ast.Land, a, b) ->
      let l_false = new_label f and l_end = new_label f in
      gen_expr f a;
      branch f (Bz acc) l_false;
      gen_expr f b;
      branch f (Bz acc) l_false;
      emit f (Svm.Isa.Movi (acc, 1l));
      branch f Bal l_end;
      place f l_false;
      emit f (Svm.Isa.Movi (acc, 0l));
      place f l_end
  | Ast.Bin (Ast.Lor, a, b) ->
      let l_true = new_label f and l_end = new_label f in
      gen_expr f a;
      branch f (Bnz acc) l_true;
      gen_expr f b;
      branch f (Bnz acc) l_true;
      emit f (Svm.Isa.Movi (acc, 0l));
      branch f Bal l_end;
      place f l_true;
      emit f (Svm.Isa.Movi (acc, 1l));
      place f l_end
  | Ast.Bin (op, a, b) ->
      gen_expr f a;
      push_reg f acc;
      gen_expr f b;
      pop_reg f tmp;
      (* tmp = lhs, acc = rhs *)
      let i =
        match op with
        | Ast.Add -> Svm.Isa.Add (acc, tmp, acc)
        | Ast.Sub -> Svm.Isa.Sub (acc, tmp, acc)
        | Ast.Mul -> Svm.Isa.Mul (acc, tmp, acc)
        | Ast.Div -> Svm.Isa.Div (acc, tmp, acc)
        | Ast.Mod -> Svm.Isa.Mod (acc, tmp, acc)
        | Ast.And -> Svm.Isa.And_ (acc, tmp, acc)
        | Ast.Or -> Svm.Isa.Or_ (acc, tmp, acc)
        | Ast.Xor -> Svm.Isa.Xor (acc, tmp, acc)
        | Ast.Shl -> Svm.Isa.Shl (acc, tmp, acc)
        | Ast.Shr -> Svm.Isa.Shr (acc, tmp, acc)
        | Ast.Lt -> Svm.Isa.Cmplt (acc, tmp, acc)
        | Ast.Le -> Svm.Isa.Cmple (acc, tmp, acc)
        | Ast.Gt -> Svm.Isa.Cmplt (acc, acc, tmp)
        | Ast.Ge -> Svm.Isa.Cmple (acc, acc, tmp)
        | Ast.Eq -> Svm.Isa.Cmpeq (acc, tmp, acc)
        | Ast.Ne -> Svm.Isa.Cmpeq (acc, tmp, acc)
        | Ast.Land | Ast.Lor -> assert false
      in
      emit f i;
      if op = Ast.Ne then (
        emit f (Svm.Isa.Movi (tmp, 0l));
        emit f (Svm.Isa.Cmpeq (acc, acc, tmp)))

(* Put the base address for indexing [name] into tmp (r2). A local or
   scalar global holds a pointer; an array/string global IS the base. *)
and gen_base_address (f : fenv) (name : string) : unit =
  match local_offset f name with
  | Some off -> emit f (Svm.Isa.Ld (tmp, fp, Int32.of_int off))
  | None -> (
      match Hashtbl.find_opt f.genv name with
      | Some (Garray | Gstring) -> lea_global f tmp name
      | Some (Gscalar | Gextern_var) ->
          lea_global f tmp name;
          emit f (Svm.Isa.Ld (tmp, tmp, 0l))
      | Some (Gfun _ | Gextern_fun _) -> fail "%s is a function, not indexable" name
      | None -> fail "undeclared variable %s" name)

and check_arity (f : fenv) (name : string) (given : int) : unit =
  match Hashtbl.find_opt f.genv name with
  | Some (Gfun n | Gextern_fun n) ->
      if n <> given then fail "%s expects %d arguments, got %d" name n given
  | Some (Gscalar | Garray | Gstring | Gextern_var) ->
      fail "%s is not a function" name
  | None ->
      (* unknown callee: implicitly extern, any arity — the normal case
         for library routines resolved by the server at link time *)
      ()

let rec gen_stmt (f : fenv) (s : Ast.stmt) : unit =
  match s with
  | Ast.Decl (name, init) -> (
      match init with
      | Some e ->
          gen_expr f e;
          let off =
            match local_offset f name with
            | Some o -> o
            | None -> fail "internal: local %s unallocated" name
          in
          emit f (Svm.Isa.St (fp, acc, Int32.of_int off))
      | None -> ())
  | Ast.Assign (name, e) -> (
      gen_expr f e;
      match local_offset f name with
      | Some off -> emit f (Svm.Isa.St (fp, acc, Int32.of_int off))
      | None -> (
          match Hashtbl.find_opt f.genv name with
          | Some (Gscalar | Gextern_var) ->
              lea_global f tmp name;
              emit f (Svm.Isa.St (tmp, acc, 0l))
          | Some _ -> fail "cannot assign to %s" name
          | None -> fail "undeclared variable %s" name))
  | Ast.Store (name, idx, e) ->
      gen_expr f idx;
      emit f (Svm.Isa.Movi (tmp, 2l));
      emit f (Svm.Isa.Shl (acc, acc, tmp));
      push_reg f acc;
      gen_expr f e;
      pop_reg f tm3;
      (* tm3 = byte offset, acc = value *)
      gen_base_address f name;
      emit f (Svm.Isa.Add (tmp, tmp, tm3));
      emit f (Svm.Isa.St (tmp, acc, 0l))
  | Ast.Store8 (addr, v) ->
      gen_expr f addr;
      push_reg f acc;
      gen_expr f v;
      pop_reg f tmp;
      emit f (Svm.Isa.Stb (tmp, acc, 0l))
  | Ast.If (cond, then_, else_) -> (
      gen_expr f cond;
      match else_ with
      | None ->
          let l_end = new_label f in
          branch f (Bz acc) l_end;
          gen_stmt f then_;
          place f l_end
      | Some e ->
          let l_else = new_label f and l_end = new_label f in
          branch f (Bz acc) l_else;
          gen_stmt f then_;
          branch f Bal l_end;
          place f l_else;
          gen_stmt f e;
          place f l_end)
  | Ast.While (cond, body) ->
      let l_top = new_label f and l_end = new_label f in
      place f l_top;
      gen_expr f cond;
      branch f (Bz acc) l_end;
      f.loop_stack <- (l_end, l_top) :: f.loop_stack;
      gen_stmt f body;
      f.loop_stack <- List.tl f.loop_stack;
      branch f Bal l_top;
      place f l_end
  | Ast.For (init, cond, step, body) ->
      (* continue jumps to the step, not the condition *)
      (match init with Some s -> gen_stmt f s | None -> ());
      let l_top = new_label f and l_step = new_label f and l_end = new_label f in
      place f l_top;
      (match cond with
      | Some c ->
          gen_expr f c;
          branch f (Bz acc) l_end
      | None -> ());
      f.loop_stack <- (l_end, l_step) :: f.loop_stack;
      gen_stmt f body;
      f.loop_stack <- List.tl f.loop_stack;
      place f l_step;
      (match step with Some s -> gen_stmt f s | None -> ());
      branch f Bal l_top;
      place f l_end
  | Ast.Break -> (
      match f.loop_stack with
      | (l_break, _) :: _ -> branch f Bal l_break
      | [] -> fail "break outside loop")
  | Ast.Continue -> (
      match f.loop_stack with
      | (_, l_cont) :: _ -> branch f Bal l_cont
      | [] -> fail "continue outside loop")
  | Ast.Return None ->
      emit f (Svm.Isa.Movi (rv, 0l));
      branch f Bal f.epilogue
  | Ast.Return (Some e) ->
      gen_expr f e;
      emit f (Svm.Isa.Mov (rv, acc));
      branch f Bal f.epilogue
  | Ast.Block stmts -> List.iter (gen_stmt f) stmts
  | Ast.Expr e -> gen_expr f e

(* Collect all local declarations of a function body (C89-style
   function-scoped locals). *)
let rec collect_decls (acc : string list) (s : Ast.stmt) : string list =
  match s with
  | Ast.Decl (name, _) -> name :: acc
  | Ast.If (_, a, b) -> (
      let acc = collect_decls acc a in
      match b with Some b -> collect_decls acc b | None -> acc)
  | Ast.While (_, b) -> collect_decls acc b
  | Ast.For (init, _, step, b) ->
      let acc = match init with Some s -> collect_decls acc s | None -> acc in
      let acc = match step with Some s -> collect_decls acc s | None -> acc in
      collect_decls acc b
  | Ast.Block ss -> List.fold_left collect_decls acc ss
  | Ast.Assign _ | Ast.Store _ | Ast.Store8 _ | Ast.Return _ | Ast.Break
  | Ast.Continue | Ast.Expr _ ->
      acc

(* Emit an instruction whose immediate carries a relocation, going
   through the assembler's reloc-tracking entry points. *)
let emit_with_reloc (a : Sof.Asm.t) ins kind sym addend : unit =
  match (ins, kind) with
  | Svm.Isa.Call _, Sof.Reloc.Abs32 when addend = 0 -> Sof.Asm.call a sym
  | Svm.Isa.Jmp _, Sof.Reloc.Abs32 when addend = 0 -> Sof.Asm.jmp_sym a sym
  | Svm.Isa.Lea (rd, _), Sof.Reloc.Abs32 -> Sof.Asm.lea ~addend a rd sym
  | _ -> fail "internal: unsupported reloc instruction"

(* Flush buffered items (in program order) into the object assembler,
   resolving local branch displacements. *)
let flush_items (a : Sof.Asm.t) (items : item list) : unit =
  let items = Array.of_list items in
  (* instruction index of each item (labels occupy no space) *)
  let n = Array.length items in
  let idx = Array.make n 0 in
  let label_at = Hashtbl.create 16 in
  let count = ref 0 in
  Array.iteri
    (fun i it ->
      idx.(i) <- !count;
      match it with
      | Ldef l -> Hashtbl.replace label_at l !count
      | Plain _ | Reloc _ | Bfix _ -> incr count)
    items;
  let disp from_idx l =
    match Hashtbl.find_opt label_at l with
    | Some target -> Int32.of_int ((target - (from_idx + 1)) * Svm.Isa.width)
    | None -> fail "internal: unplaced label %d" l
  in
  Array.iteri
    (fun i it ->
      match it with
      | Plain ins -> Sof.Asm.instr a ins
      | Reloc (ins, kind, sym, addend) -> emit_with_reloc a ins kind sym addend
      | Bfix (k, l) ->
          let d = disp idx.(i) l in
          let ins =
            match k with
            | Bz r -> Svm.Isa.Jz (r, d)
            | Bnz r -> Svm.Isa.Jnz (r, d)
            | Bal -> Svm.Isa.Br d
          in
          Sof.Asm.instr a ins
      | Ldef _ -> ())
    items

(* Emit one function into the assembler; string literals go into the
   shared per-unit accumulator. With [optimize], the peephole pass runs
   over the buffered items first. *)
let gen_function ?(optimize = false) (a : Sof.Asm.t) (genv : genv)
    ~(strings : strings_acc) (fn : Ast.func) : unit =
  let f =
    {
      genv;
      locals = Hashtbl.create 8;
      items = [];
      nlabels = 1;
      loop_stack = [];
      strings;
      epilogue = 1;
    }
  in
  (* parameters at fp+8, fp+12, ... *)
  List.iteri
    (fun i p ->
      if Hashtbl.mem f.locals p then fail "duplicate parameter %s" p;
      Hashtbl.replace f.locals p (8 + (4 * i)))
    fn.Ast.params;
  (* locals at fp-4, fp-8, ... *)
  let decls = List.rev (List.fold_left collect_decls [] fn.Ast.body) in
  List.iteri
    (fun i name ->
      if Hashtbl.mem f.locals name then fail "duplicate local %s in %s" name fn.Ast.fname;
      Hashtbl.replace f.locals name (-4 * (i + 1)))
    decls;
  let nlocals = List.length decls in
  let start = Sof.Asm.here_text a in
  let binding = if fn.Ast.static then Sof.Symbol.Local else Sof.Symbol.Global in
  Sof.Asm.label ~binding a fn.Ast.fname;
  (* prologue *)
  push_reg f ra;
  push_reg f fp;
  emit f (Svm.Isa.Mov (fp, sp));
  if nlocals > 0 then
    emit f (Svm.Isa.Addi (sp, sp, Int32.of_int (-4 * nlocals)));
  List.iter (gen_stmt f) fn.Ast.body;
  (* fall-through return 0 *)
  emit f (Svm.Isa.Movi (rv, 0l));
  place f f.epilogue;
  emit f (Svm.Isa.Mov (sp, fp));
  pop_reg f fp;
  pop_reg f ra;
  emit f Svm.Isa.Ret;
  let items = List.rev f.items in
  let items = if optimize then Peephole.run items else items in
  flush_items a items;
  Sof.Asm.set_symbol_size a fn.Ast.fname (Sof.Asm.here_text a - start);
  if fn.Ast.is_ctor then Sof.Asm.ctor a fn.Ast.fname

(* Emit the globals of a unit. *)
let gen_global (a : Sof.Asm.t) (g : Ast.global) : unit =
  match g with
  | Ast.Gvar { name; init; static } ->
      let binding = if static then Sof.Symbol.Local else Sof.Symbol.Global in
      Sof.Asm.data_label ~binding a name;
      Sof.Asm.data_word a init
  | Ast.Garray { name; size; static } ->
      let binding = if static then Sof.Symbol.Local else Sof.Symbol.Global in
      Sof.Asm.bss ~binding a name (4 * size)
  | Ast.Gstring { name; value; static } ->
      let binding = if static then Sof.Symbol.Local else Sof.Symbol.Global in
      Sof.Asm.data_label ~binding a name;
      Sof.Asm.data_string a value
  | Ast.Gextern_var name | Ast.Gextern_fun (name, _) -> Sof.Asm.extern a name
  | Ast.Gfunc _ -> ()

let emit_strings (a : Sof.Asm.t) (strings : strings_acc) : unit =
  List.iter
    (fun (label, contents) ->
      Sof.Asm.data_label ~binding:Sof.Symbol.Local a label;
      Sof.Asm.data_string a contents)
    (List.rev strings.items)

(** [gen ~name prog] compiles a translation unit into one object file. *)
let gen ?(optimize = false) ~(name : string) (prog : Ast.program) : Sof.Object_file.t =
  let genv = build_genv prog in
  let a = Sof.Asm.create name in
  let unit_name = Filename.remove_extension (Filename.basename name) in
  let strings = { prefix = unit_name; items = []; n = 0 } in
  List.iter
    (fun (g : Ast.global) ->
      match g with Ast.Gfunc fn -> gen_function ~optimize a genv ~strings fn | _ -> ())
    prog;
  List.iter (gen_global a) prog;
  emit_strings a strings;
  Sof.Asm.finish a

(** [gen_split ~name prog] compiles each function into its own object
    file (plus one object carrying the unit's globals). This is the
    granularity the server's reordering transformation works at. Static
    functions/globals cannot be split (their Local binding would not
    resolve across fragments). *)
let gen_split ?(optimize = false) ~(name : string) (prog : Ast.program) :
    Sof.Object_file.t list =
  let genv = build_genv prog in
  let base = Filename.remove_extension name in
  let funcs, others =
    List.partition (function Ast.Gfunc _ -> true | _ -> false) prog
  in
  List.iter
    (fun g ->
      match g with
      | Ast.Gfunc { Ast.static = true; fname; _ } ->
          fail "cannot split static function %s" fname
      | Ast.Gvar { static = true; name; _ } | Ast.Garray { static = true; name; _ } ->
          fail "cannot split static global %s" name
      | _ -> ())
    prog;
  let fun_objs =
    List.map
      (fun g ->
        match g with
        | Ast.Gfunc fn ->
            let oname = Printf.sprintf "%s.%s.o" base fn.Ast.fname in
            let a = Sof.Asm.create oname in
            let strings = { prefix = fn.Ast.fname; items = []; n = 0 } in
            gen_function ~optimize a genv ~strings fn;
            emit_strings a strings;
            Sof.Asm.finish a
        | _ -> assert false)
      funcs
  in
  let globals_obj =
    let a = Sof.Asm.create (base ^ ".globals.o") in
    List.iter (gen_global a) others;
    Sof.Asm.finish a
  in
  if others = [] then fun_objs else fun_objs @ [ globals_obj ]
