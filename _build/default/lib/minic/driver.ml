(** The compiler driver: source text → SOF objects.

    This is what backs the blueprint [source] operator ("produces a
    fragment from a C, C++, or assembly language source object") and the
    workload generators. *)

exception Compile_error of string

let wrap f =
  try f () with
  | Lexer.Lex_error (msg, line) ->
      raise (Compile_error (Printf.sprintf "lex error (line %d): %s" line msg))
  | Parser.Parse_error (msg, line) ->
      raise (Compile_error (Printf.sprintf "parse error (line %d): %s" line msg))
  | Codegen.Codegen_error msg -> raise (Compile_error ("codegen error: " ^ msg))

(** [compile ~name src] compiles one translation unit into one object
    file named [name]. [optimize] enables the peephole pass (the
    default is the paper's "non-optimized, debuggable" build). *)
let compile ?(optimize = false) ~(name : string) (src : string) : Sof.Object_file.t =
  wrap (fun () -> Codegen.gen ~optimize ~name (Parser.parse src))

(** [compile_split ~name src] compiles each function into its own
    object (the granularity used by function reordering); unit globals
    go into a trailing [.globals.o] object. *)
let compile_split ?(optimize = false) ~(name : string) (src : string) :
    Sof.Object_file.t list =
  wrap (fun () -> Codegen.gen_split ~optimize ~name (Parser.parse src))

(** Parse only (for tooling/tests). *)
let parse (src : string) : Ast.program = wrap (fun () -> Parser.parse src)
