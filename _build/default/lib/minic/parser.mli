(** Recursive-descent parser for minic with C operator precedence. *)

exception Parse_error of string * int
type t = { lx : Lexer.t; }
val fail : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val next : t -> Token.t
val peek : t -> Token.t
val expect : t -> Token.t -> unit
val expect_ident : t -> string
val accept : t -> Token.t -> bool
val binop_at_level : Token.t -> int -> Ast.binop option
val max_level : int
val parse_expr : t -> Ast.expr
val parse_level : t -> int -> Ast.expr
val parse_unary : t -> Ast.expr
val parse_args : t -> Ast.expr list
val parse_primary : t -> Ast.expr
val parse_stmt : t -> Ast.stmt
val parse_simple_stmt : t -> Ast.stmt
val parse_header_stmt : t -> Ast.stmt
val parse_stmts_until_rbrace : t -> Ast.stmt list
val parse_params : t -> string list
val parse_topdecl : t -> Ast.global
val parse : string -> Ast.program
