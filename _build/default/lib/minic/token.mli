(** Tokens of the minic language. *)

type t =
    INT
  | CHAR
  | EXTERN
  | STATIC
  | CTOR
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | BREAK
  | CONTINUE
  | IDENT of string
  | NUM of int32
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF
val to_string : t -> string
