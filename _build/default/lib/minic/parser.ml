(** Recursive-descent parser for minic with C operator precedence. *)

exception Parse_error of string * int

type t = { lx : Lexer.t }

let fail (p : t) fmt =
  let _, line = Lexer.peek p.lx in
  Format.kasprintf (fun s -> raise (Parse_error (s, line))) fmt

let next p = fst (Lexer.next p.lx)
let peek p = fst (Lexer.peek p.lx)

let expect p (tok : Token.t) =
  let got = next p in
  if got <> tok then
    fail p "expected %s, got %s" (Token.to_string tok) (Token.to_string got)

let expect_ident p =
  match next p with
  | Token.IDENT s -> s
  | got -> fail p "expected identifier, got %s" (Token.to_string got)

let accept p (tok : Token.t) = if peek p = tok then (ignore (next p); true) else false

(* -- expressions -------------------------------------------------------- *)

(* precedence climbing; level 0 is the weakest (||) *)
let binop_at_level (tok : Token.t) (level : int) : Ast.binop option =
  match (level, tok) with
  | 0, Token.OROR -> Some Ast.Lor
  | 1, Token.ANDAND -> Some Ast.Land
  | 2, Token.PIPE -> Some Ast.Or
  | 3, Token.CARET -> Some Ast.Xor
  | 4, Token.AMP -> Some Ast.And
  | 5, Token.EQ -> Some Ast.Eq
  | 5, Token.NE -> Some Ast.Ne
  | 6, Token.LT -> Some Ast.Lt
  | 6, Token.LE -> Some Ast.Le
  | 6, Token.GT -> Some Ast.Gt
  | 6, Token.GE -> Some Ast.Ge
  | 7, Token.SHL -> Some Ast.Shl
  | 7, Token.SHR -> Some Ast.Shr
  | 8, Token.PLUS -> Some Ast.Add
  | 8, Token.MINUS -> Some Ast.Sub
  | 9, Token.STAR -> Some Ast.Mul
  | 9, Token.SLASH -> Some Ast.Div
  | 9, Token.PERCENT -> Some Ast.Mod
  | _ -> None

let max_level = 9

let rec parse_expr (p : t) : Ast.expr = parse_level p 0

and parse_level (p : t) (level : int) : Ast.expr =
  if level > max_level then parse_unary p
  else
    let lhs = ref (parse_level p (level + 1)) in
    let continue = ref true in
    while !continue do
      match binop_at_level (peek p) level with
      | Some op ->
          ignore (next p);
          let rhs = parse_level p (level + 1) in
          lhs := Ast.Bin (op, !lhs, rhs)
      | None -> continue := false
    done;
    !lhs

and parse_unary (p : t) : Ast.expr =
  match peek p with
  | Token.MINUS ->
      ignore (next p);
      Ast.Un (Ast.Neg, parse_unary p)
  | Token.BANG ->
      ignore (next p);
      Ast.Un (Ast.Not, parse_unary p)
  | Token.AMP ->
      ignore (next p);
      Ast.Addr (expect_ident p)
  | _ -> parse_primary p

and parse_args (p : t) : Ast.expr list =
  expect p Token.LPAREN;
  if accept p Token.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr p in
      if accept p Token.COMMA then go (e :: acc)
      else (
        expect p Token.RPAREN;
        List.rev (e :: acc))
    in
    go []

and parse_primary (p : t) : Ast.expr =
  match next p with
  | Token.NUM n -> Ast.Num n
  | Token.STRING s -> Ast.Str s
  | Token.LPAREN ->
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | Token.IDENT "__syscall" -> (
      match parse_args p with
      | Ast.Num n :: rest -> Ast.Syscall (Int32.to_int n, rest)
      | _ -> fail p "__syscall needs a literal syscall number")
  | Token.IDENT "__load8" -> (
      match parse_args p with
      | [ addr ] -> Ast.Load8 addr
      | _ -> fail p "__load8 takes one argument")
  | Token.IDENT "__icall" -> (
      match parse_args p with
      | addr :: args -> Ast.Icall (addr, args)
      | [] -> fail p "__icall needs a target address")
  | Token.IDENT name -> (
      match peek p with
      | Token.LPAREN -> Ast.Call (name, parse_args p)
      | Token.LBRACKET ->
          ignore (next p);
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          Ast.Index (name, idx)
      | _ -> Ast.Var name)
  | got -> fail p "unexpected %s in expression" (Token.to_string got)

(* -- statements ---------------------------------------------------------- *)

let rec parse_stmt (p : t) : Ast.stmt =
  match peek p with
  | Token.LBRACE ->
      ignore (next p);
      let stmts = parse_stmts_until_rbrace p in
      Ast.Block stmts
  | Token.INT ->
      ignore (next p);
      let name = expect_ident p in
      let init = if accept p Token.ASSIGN then Some (parse_expr p) else None in
      expect p Token.SEMI;
      Ast.Decl (name, init)
  | Token.IF ->
      ignore (next p);
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let then_ = parse_stmt p in
      let else_ = if accept p Token.ELSE then Some (parse_stmt p) else None in
      Ast.If (cond, then_, else_)
  | Token.WHILE ->
      ignore (next p);
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      Ast.While (cond, parse_stmt p)
  | Token.FOR ->
      (* for (init; cond; step) body — each header part optional *)
      ignore (next p);
      expect p Token.LPAREN;
      let init =
        if peek p = Token.SEMI then (
          ignore (next p);
          None)
        else Some (parse_simple_stmt p)
      in
      let cond =
        if peek p = Token.SEMI then None
        else Some (parse_expr p)
      in
      expect p Token.SEMI;
      let step =
        if peek p = Token.RPAREN then None else Some (parse_header_stmt p)
      in
      expect p Token.RPAREN;
      Ast.For (init, cond, step, parse_stmt p)
  | Token.RETURN ->
      ignore (next p);
      if accept p Token.SEMI then Ast.Return None
      else
        let e = parse_expr p in
        expect p Token.SEMI;
        Ast.Return (Some e)
  | Token.BREAK ->
      ignore (next p);
      expect p Token.SEMI;
      Ast.Break
  | Token.CONTINUE ->
      ignore (next p);
      expect p Token.SEMI;
      Ast.Continue
  | Token.IDENT "__store8" ->
      ignore (next p);
      (match parse_args p with
      | [ addr; v ] ->
          expect p Token.SEMI;
          Ast.Store8 (addr, v)
      | _ -> fail p "__store8 takes two arguments")
  | Token.IDENT name -> (
      ignore (next p);
      match peek p with
      | Token.ASSIGN ->
          ignore (next p);
          let e = parse_expr p in
          expect p Token.SEMI;
          Ast.Assign (name, e)
      | Token.LBRACKET ->
          ignore (next p);
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          if accept p Token.ASSIGN then (
            let e = parse_expr p in
            expect p Token.SEMI;
            Ast.Store (name, idx, e))
          else fail p "expected = after index expression statement"
      | Token.LPAREN ->
          let e =
            match name with
            | "__syscall" -> (
                match parse_args p with
                | Ast.Num n :: rest -> Ast.Syscall (Int32.to_int n, rest)
                | _ -> fail p "__syscall needs a literal syscall number")
            | "__load8" -> (
                match parse_args p with
                | [ addr ] -> Ast.Load8 addr
                | _ -> fail p "__load8 takes one argument")
            | "__icall" -> (
                match parse_args p with
                | addr :: args -> Ast.Icall (addr, args)
                | [] -> fail p "__icall needs a target address")
            | _ -> Ast.Call (name, parse_args p)
          in
          expect p Token.SEMI;
          Ast.Expr e
      | got -> fail p "unexpected %s after identifier" (Token.to_string got))
  | got -> fail p "unexpected %s at statement start" (Token.to_string got)

(* assignment/call statement ending in ';' (for-header init) *)
and parse_simple_stmt (p : t) : Ast.stmt =
  let st = parse_header_stmt p in
  expect p Token.SEMI;
  st

(* assignment/store/call without the trailing ';' (for-header step) *)
and parse_header_stmt (p : t) : Ast.stmt =
  match next p with
  | Token.IDENT name -> (
      match peek p with
      | Token.ASSIGN ->
          ignore (next p);
          Ast.Assign (name, parse_expr p)
      | Token.LBRACKET ->
          ignore (next p);
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          expect p Token.ASSIGN;
          Ast.Store (name, idx, parse_expr p)
      | Token.LPAREN -> Ast.Expr (Ast.Call (name, parse_args p))
      | got -> fail p "unexpected %s in for header" (Token.to_string got))
  | got -> fail p "unexpected %s in for header" (Token.to_string got)

and parse_stmts_until_rbrace (p : t) : Ast.stmt list =
  let rec go acc =
    if accept p Token.RBRACE then List.rev acc else go (parse_stmt p :: acc)
  in
  go []

(* -- top level ------------------------------------------------------------ *)

let parse_params (p : t) : string list =
  expect p Token.LPAREN;
  if accept p Token.RPAREN then []
  else
    let rec go acc =
      expect p Token.INT;
      let name = expect_ident p in
      if accept p Token.COMMA then go (name :: acc)
      else (
        expect p Token.RPAREN;
        List.rev (name :: acc))
    in
    go []

let parse_topdecl (p : t) : Ast.global =
  match peek p with
  | Token.EXTERN -> (
      ignore (next p);
      expect p Token.INT;
      let name = expect_ident p in
      match peek p with
      | Token.LPAREN ->
          let params = parse_params p in
          expect p Token.SEMI;
          Ast.Gextern_fun (name, List.length params)
      | _ ->
          expect p Token.SEMI;
          Ast.Gextern_var name)
  | Token.CHAR ->
      ignore (next p);
      let name = expect_ident p in
      expect p Token.LBRACKET;
      expect p Token.RBRACKET;
      expect p Token.ASSIGN;
      let value =
        match next p with
        | Token.STRING s -> s
        | got -> fail p "expected string literal, got %s" (Token.to_string got)
      in
      expect p Token.SEMI;
      Ast.Gstring { name; value; static = false }
  | _ ->
      let static = accept p Token.STATIC in
      let is_ctor = accept p Token.CTOR in
      expect p Token.INT;
      let name = expect_ident p in
      (match peek p with
      | Token.LPAREN ->
          let params = parse_params p in
          expect p Token.LBRACE;
          let body = parse_stmts_until_rbrace p in
          Ast.Gfunc { Ast.fname = name; params; body; static; is_ctor }
      | Token.LBRACKET ->
          ignore (next p);
          let size =
            match next p with
            | Token.NUM n -> Int32.to_int n
            | got -> fail p "expected array size, got %s" (Token.to_string got)
          in
          expect p Token.RBRACKET;
          expect p Token.SEMI;
          Ast.Garray { name; size; static }
      | Token.ASSIGN ->
          ignore (next p);
          let init =
            match next p with
            | Token.NUM n -> n
            | Token.MINUS -> (
                match next p with
                | Token.NUM n -> Int32.neg n
                | got -> fail p "expected number, got %s" (Token.to_string got))
            | got -> fail p "expected initializer, got %s" (Token.to_string got)
          in
          expect p Token.SEMI;
          Ast.Gvar { name; init; static }
      | Token.SEMI ->
          ignore (next p);
          Ast.Gvar { name; init = 0l; static }
      | got -> fail p "unexpected %s in declaration" (Token.to_string got))

(** [parse src] parses a full translation unit. *)
let parse (src : string) : Ast.program =
  let p = { lx = Lexer.create src } in
  let rec go acc =
    if peek p = Token.EOF then List.rev acc else go (parse_topdecl p :: acc)
  in
  go []
