(** Abstract syntax of minic.

    Everything is a 32-bit int; arrays are word arrays; strings are
    addresses of NUL-terminated byte runs in the data section. That is
    all the paper's workloads need, and it keeps the calling convention
    and relocation story small. *)

type binop =
    Add
  | Sub
  | Mul
  | Div
  | Mod
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor
type unop = Neg | Not
type expr =
    Num of int32
  | Str of string
  | Var of string
  | Index of string * expr
  | Addr of string
  | Call of string * expr list
  | Syscall of int * expr list
  | Icall of expr * expr list
  | Load8 of expr
  | Bin of binop * expr * expr
  | Un of unop * expr
type stmt =
    Decl of string * expr option
  | Assign of string * expr
  | Store of string * expr * expr
  | Store8 of expr * expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * stmt option * stmt
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Expr of expr
type func = {
  fname : string;
  params : string list;
  body : stmt list;
  static : bool;
  is_ctor : bool;
}
type global =
    Gvar of { name : string; init : int32; static : bool; }
  | Garray of { name : string; size : int; static : bool; }
  | Gstring of { name : string; value : string; static : bool; }
  | Gextern_var of string
  | Gextern_fun of string * int
  | Gfunc of func
type program = global list
val binop_to_string : binop -> string
