(** Peephole optimization over the buffered instruction items.

    The stack-machine code generator is simple and correct but verbose:
    every binary operator pushes its left operand, evaluates the right,
    and pops — five instructions of traffic even when the right operand
    is a single constant or variable load. The paper's codegen numbers
    distinguish "optimized" from "non-optimized, debuggable" builds
    (203 KB vs 289 KB of text); this pass is the reproduction's
    optimizer, enabled by [Driver.compile ~optimize:true].

    Two rewrites, both restricted to windows containing no label
    definitions or branches (so control flow cannot enter mid-window):

    - push/eval-simple/pop:
      {v addi sp,-4; st [sp],rA; SIMPLE; ld rB,[sp]; addi sp,+4 v}
      where SIMPLE is one instruction writing rA and reading neither
      [rB] nor [sp], becomes {v mov rB,rA; SIMPLE v}.

    - push/pop cancellation:
      {v addi sp,-4; st [sp],rA; ld rB,[sp]; addi sp,+4 v}
      becomes {v mov rB,rA v}. *)

type item = Codegen_items.item
val sp : int
val writes : Svm.Isa.instr -> int -> bool
val reads : Svm.Isa.instr -> int -> bool
val simple_filler : item -> src:int -> dst:int -> bool
val optimize : item list -> item list
val run : item list -> item list
