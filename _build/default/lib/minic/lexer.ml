(** Hand-written lexer for minic. Tracks line numbers for diagnostics;
    supports decimal and hex literals, string escapes, and both comment
    styles. *)

exception Lex_error of string * int (* message, line *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (Token.t * int) option;
}

let create (src : string) : t = { src; pos = 0; line = 1; peeked = None }

let fail lx fmt =
  Format.kasprintf (fun s -> raise (Lex_error (s, lx.line))) fmt

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let keyword = function
  | "int" -> Some Token.INT
  | "char" -> Some Token.CHAR
  | "extern" -> Some Token.EXTERN
  | "static" -> Some Token.STATIC
  | "ctor" -> Some Token.CTOR
  | "if" -> Some Token.IF
  | "else" -> Some Token.ELSE
  | "while" -> Some Token.WHILE
  | "for" -> Some Token.FOR
  | "return" -> Some Token.RETURN
  | "break" -> Some Token.BREAK
  | "continue" -> Some Token.CONTINUE
  | _ -> None

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\n' then
     lx.line <- lx.line + 1);
  lx.pos <- lx.pos + 1

let rec skip_ws_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws_and_comments lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
      match lx.src.[lx.pos + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_ws_and_comments lx
      | '*' ->
          advance lx;
          advance lx;
          let rec go () =
            match peek_char lx with
            | None -> fail lx "unterminated comment"
            | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                go ()
          in
          go ();
          skip_ws_and_comments lx
      | _ -> ())
  | _ -> ()

let lex_number lx =
  let start = lx.pos in
  let hex =
    lx.pos + 1 < String.length lx.src
    && lx.src.[lx.pos] = '0'
    && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  in
  if hex then (
    advance lx;
    advance lx;
    while (match peek_char lx with Some c -> is_hex c | None -> false) do
      advance lx
    done)
  else
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
  let text = String.sub lx.src start (lx.pos - start) in
  match Int32.of_string_opt text with
  | Some v -> Token.NUM v
  | None -> fail lx "bad number literal %s" text

let lex_string lx =
  advance lx;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> fail lx "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' ->
        advance lx;
        (match peek_char lx with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '0' -> Buffer.add_char buf '\000'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some c -> fail lx "bad escape \\%c" c
        | None -> fail lx "unterminated string");
        advance lx;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

(* character literals: 'a', '\n', '\t', '\0', '\\', '\'' *)
let lex_char lx =
  advance lx;
  let c =
    match peek_char lx with
    | Some '\\' ->
        advance lx;
        (match peek_char lx with
        | Some 'n' -> '\n'
        | Some 't' -> '\t'
        | Some '0' -> '\000'
        | Some '\\' -> '\\'
        | Some '\'' -> '\''
        | Some c -> fail lx "bad character escape \\%c" c
        | None -> fail lx "unterminated character literal")
    | Some c -> c
    | None -> fail lx "unterminated character literal"
  in
  advance lx;
  (match peek_char lx with
  | Some '\'' -> advance lx
  | _ -> fail lx "unterminated character literal");
  Token.NUM (Int32.of_int (Char.code c))

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_id_char c | None -> false) do
    advance lx
  done;
  let text = String.sub lx.src start (lx.pos - start) in
  match keyword text with Some t -> t | None -> Token.IDENT text

let two lx (second : char) (yes : Token.t) (no : Token.t) =
  advance lx;
  if peek_char lx = Some second then (
    advance lx;
    yes)
  else no

let raw_next (lx : t) : Token.t * int =
  skip_ws_and_comments lx;
  let line = lx.line in
  let tok =
    match peek_char lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_id_start c -> lex_ident lx
    | Some '"' -> lex_string lx
    | Some '\'' -> lex_char lx
    | Some '(' -> advance lx; Token.LPAREN
    | Some ')' -> advance lx; Token.RPAREN
    | Some '{' -> advance lx; Token.LBRACE
    | Some '}' -> advance lx; Token.RBRACE
    | Some '[' -> advance lx; Token.LBRACKET
    | Some ']' -> advance lx; Token.RBRACKET
    | Some ';' -> advance lx; Token.SEMI
    | Some ',' -> advance lx; Token.COMMA
    | Some '+' -> advance lx; Token.PLUS
    | Some '-' -> advance lx; Token.MINUS
    | Some '*' -> advance lx; Token.STAR
    | Some '/' -> advance lx; Token.SLASH
    | Some '%' -> advance lx; Token.PERCENT
    | Some '^' -> advance lx; Token.CARET
    | Some '=' -> two lx '=' Token.EQ Token.ASSIGN
    | Some '!' -> two lx '=' Token.NE Token.BANG
    | Some '&' -> two lx '&' Token.ANDAND Token.AMP
    | Some '|' -> two lx '|' Token.OROR Token.PIPE
    | Some '<' ->
        advance lx;
        if peek_char lx = Some '<' then (advance lx; Token.SHL)
        else if peek_char lx = Some '=' then (advance lx; Token.LE)
        else Token.LT
    | Some '>' ->
        advance lx;
        if peek_char lx = Some '>' then (advance lx; Token.SHR)
        else if peek_char lx = Some '=' then (advance lx; Token.GE)
        else Token.GT
    | Some c -> fail lx "unexpected character %C" c
  in
  (tok, line)

(** [next lx] consumes and returns the next token with its line. *)
let next (lx : t) : Token.t * int =
  match lx.peeked with
  | Some tl ->
      lx.peeked <- None;
      tl
  | None -> raw_next lx

(** [peek lx] returns the next token without consuming it. *)
let peek (lx : t) : Token.t * int =
  match lx.peeked with
  | Some tl -> tl
  | None ->
      let tl = raw_next lx in
      lx.peeked <- Some tl;
      tl

(** Lex a whole string (testing convenience). *)
let all (src : string) : Token.t list =
  let lx = create src in
  let rec go acc =
    match next lx with
    | Token.EOF, _ -> List.rev (Token.EOF :: acc)
    | t, _ -> go (t :: acc)
  in
  go []
