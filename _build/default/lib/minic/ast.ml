(** Abstract syntax of minic.

    Everything is a 32-bit int; arrays are word arrays; strings are
    addresses of NUL-terminated byte runs in the data section. That is
    all the paper's workloads need, and it keeps the calling convention
    and relocation story small. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor (* short-circuit *)

type unop = Neg | Not

type expr =
  | Num of int32
  | Str of string (* address of the literal *)
  | Var of string
  | Index of string * expr (* v[e] : word indexing *)
  | Addr of string (* &v : address of a global *)
  | Call of string * expr list
  | Syscall of int * expr list (* __syscall(N, ...) with literal N *)
  | Icall of expr * expr list (* __icall(addr, ...): indirect call *)
  | Load8 of expr (* __load8(addr) *)
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt =
  | Decl of string * expr option (* int x; / int x = e; *)
  | Assign of string * expr
  | Store of string * expr * expr (* v[i] = e *)
  | Store8 of expr * expr (* __store8(addr, v) *)
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * stmt option * stmt
      (* for (init; cond; step) body; missing cond = loop forever *)
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Expr of expr

type func = {
  fname : string;
  params : string list;
  body : stmt list;
  static : bool; (* Local binding *)
  is_ctor : bool; (* registered as static initializer *)
}

type global =
  | Gvar of { name : string; init : int32; static : bool } (* int g = k; *)
  | Garray of { name : string; size : int; static : bool } (* int g[n]; (bss) *)
  | Gstring of { name : string; value : string; static : bool } (* char s[] = "..."; *)
  | Gextern_var of string
  | Gextern_fun of string * int (* name, arity *)
  | Gfunc of func

type program = global list

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Land -> "&&" | Lor -> "||"
