(** Peephole optimization over the buffered instruction items.

    The stack-machine code generator is simple and correct but verbose:
    every binary operator pushes its left operand, evaluates the right,
    and pops — five instructions of traffic even when the right operand
    is a single constant or variable load. The paper's codegen numbers
    distinguish "optimized" from "non-optimized, debuggable" builds
    (203 KB vs 289 KB of text); this pass is the reproduction's
    optimizer, enabled by [Driver.compile ~optimize:true].

    Two rewrites, both restricted to windows containing no label
    definitions or branches (so control flow cannot enter mid-window):

    - push/eval-simple/pop:
      {v addi sp,-4; st [sp],rA; SIMPLE; ld rB,[sp]; addi sp,+4 v}
      where SIMPLE is one instruction writing rA and reading neither
      [rB] nor [sp], becomes {v mov rB,rA; SIMPLE v}.

    - push/pop cancellation:
      {v addi sp,-4; st [sp],rA; ld rB,[sp]; addi sp,+4 v}
      becomes {v mov rB,rA v}. *)

type item = Codegen_items.item

open Svm.Isa

let sp = reg_sp

(* Does [i] write register [r]? *)
let writes (i : instr) (r : int) : bool =
  match i with
  | Movi (rd, _) | Lea (rd, _) | Mov (rd, _)
  | Add (rd, _, _) | Sub (rd, _, _) | Mul (rd, _, _) | Div (rd, _, _)
  | Mod (rd, _, _) | And_ (rd, _, _) | Or_ (rd, _, _) | Xor (rd, _, _)
  | Shl (rd, _, _) | Shr (rd, _, _) | Addi (rd, _, _)
  | Cmpeq (rd, _, _) | Cmplt (rd, _, _) | Cmple (rd, _, _)
  | Ld (rd, _, _) | Ldb (rd, _, _) ->
      rd = r
  | St _ | Stb _ | Jmp _ | Jz _ | Jnz _ | Br _ | Call _ | Callr _ | Jmpr _
  | Ret | Sys _ | Halt | Nop ->
      false

(* Does [i] read register [r]? (conservative) *)
let reads (i : instr) (r : int) : bool =
  match i with
  | Movi _ | Lea _ | Jmp _ | Br _ | Call _ | Sys _ | Halt | Nop -> false
  | Mov (_, a) | Jz (a, _) | Jnz (a, _) | Callr a | Jmpr a -> a = r
  | Ret -> r = reg_ra
  | Addi (_, a, _) | Ld (_, a, _) | Ldb (_, a, _) -> a = r
  | St (a, s, _) | Stb (a, s, _) -> a = r || s = r
  | Add (_, a, b) | Sub (_, a, b) | Mul (_, a, b) | Div (_, a, b)
  | Mod (_, a, b) | And_ (_, a, b) | Or_ (_, a, b) | Xor (_, a, b)
  | Shl (_, a, b) | Shr (_, a, b)
  | Cmpeq (_, a, b) | Cmplt (_, a, b) | Cmple (_, a, b) ->
      a = r || b = r

(* A "simple" filler instruction for the 5-window rewrite: a plain
   instruction (or one carrying a relocation, e.g. lea) that writes
   [src], does not read [dst] or sp, and transfers no control. *)
let simple_filler (it : item) ~(src : int) ~(dst : int) : bool =
  let check i =
    writes i src && (not (reads i dst)) && (not (reads i sp)) && not (writes i sp)
    &&
    match i with
    | Jmp _ | Jz _ | Jnz _ | Br _ | Call _ | Callr _ | Jmpr _ | Ret | Sys _ | Halt ->
        false
    | St _ | Stb _ -> false (* stores do not write src anyway *)
    | _ -> true
  in
  match it with
  | Codegen_items.Plain i -> check i
  | Codegen_items.Reloc (i, _, _, _) -> check i
  | Codegen_items.Bfix _ | Codegen_items.Ldef _ -> false

(* [optimize items] rewrites the (in-order) item list. *)
let rec optimize (items : item list) : item list =
  match items with
  (* push rA; SIMPLE(rA->); pop rB  ==>  mov rB,rA; SIMPLE *)
  | Codegen_items.Plain (Addi (s1, s2, m4))
    :: Codegen_items.Plain (St (sa, ra, z1))
    :: filler
    :: Codegen_items.Plain (Ld (rb, sb, z2))
    :: Codegen_items.Plain (Addi (s3, s4, p4))
    :: rest
    when s1 = sp && s2 = sp && m4 = -4l && sa = sp && z1 = 0l && sb = sp && z2 = 0l
         && s3 = sp && s4 = sp && p4 = 4l && rb <> ra
         && simple_filler filler ~src:ra ~dst:rb ->
      Codegen_items.Plain (Mov (rb, ra)) :: filler :: optimize rest
  (* push rA; pop rB  ==>  mov rB,rA  (or nothing if rA = rB) *)
  | Codegen_items.Plain (Addi (s1, s2, m4))
    :: Codegen_items.Plain (St (sa, ra, z1))
    :: Codegen_items.Plain (Ld (rb, sb, z2))
    :: Codegen_items.Plain (Addi (s3, s4, p4))
    :: rest
    when s1 = sp && s2 = sp && m4 = -4l && sa = sp && z1 = 0l && sb = sp && z2 = 0l
         && s3 = sp && s4 = sp && p4 = 4l ->
      if ra = rb then optimize rest
      else Codegen_items.Plain (Mov (rb, ra)) :: optimize rest
  | it :: rest -> it :: optimize rest
  | [] -> []

(* Iterate to a fixed point (each pass can expose new windows). *)
let run (items : item list) : item list =
  let rec fix items n =
    let items' = optimize items in
    if n <= 0 || List.length items' = List.length items then items'
    else fix items' (n - 1)
  in
  fix items 8
