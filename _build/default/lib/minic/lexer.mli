(** Hand-written lexer for minic. Tracks line numbers for diagnostics;
    supports decimal and hex literals, string escapes, and both comment
    styles. *)

exception Lex_error of string * int
type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (Token.t * int) option;
}
val create : string -> t
val fail : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val is_id_start : char -> bool
val is_id_char : char -> bool
val is_digit : char -> bool
val is_hex : char -> bool
val keyword : string -> Token.t option
val peek_char : t -> char option
val advance : t -> unit
val skip_ws_and_comments : t -> unit
val lex_number : t -> Token.t
val lex_string : t -> Token.t
val lex_char : t -> Token.t
val lex_ident : t -> Token.t
val two : t -> char -> Token.t -> Token.t -> Token.t
val raw_next : t -> Token.t * int
val next : t -> Token.t * int
val peek : t -> Token.t * int
val all : string -> Token.t list
