(** Binary serialization of SOF object files.

    The on-"disk" representation used by the simulated filesystem and by
    the image cache's digests. The format is deliberately simple — a
    magic, then length-prefixed fields — because the point of the
    reproduction is what the server does {e with} object files, not the
    encoding itself. *)

exception Decode_error of string

let magic = "SOF1"

(* -- encoding ---------------------------------------------------------- *)

let put_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let put_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_bytes buf b =
  put_u32 buf (Bytes.length b);
  Buffer.add_bytes buf b

let binding_code = function Symbol.Local -> 0 | Symbol.Global -> 1 | Symbol.Weak -> 2

let kind_code = function
  | Symbol.Text -> 0
  | Symbol.Data -> 1
  | Symbol.Bss -> 2
  | Symbol.Abs -> 3
  | Symbol.Undef -> 4

let put_symbol buf (s : Symbol.t) =
  put_string buf s.name;
  put_u8 buf (binding_code s.binding);
  put_u8 buf (kind_code s.kind);
  put_u32 buf s.value;
  put_u32 buf s.size

let put_reloc buf (r : Reloc.t) =
  put_u8 buf (match r.target with Reloc.In_text -> 0 | Reloc.In_data -> 1);
  put_u8 buf (match r.kind with Reloc.Abs32 -> 0 | Reloc.Pcrel32 -> 1);
  put_u32 buf r.offset;
  put_string buf r.symbol;
  Buffer.add_int32_le buf (Int32.of_int r.addend)

(** [encode o] serializes [o] to bytes. *)
let encode (o : Object_file.t) : Bytes.t =
  let buf = Buffer.create (Object_file.total_size o + 256) in
  Buffer.add_string buf magic;
  put_string buf o.name;
  put_bytes buf o.text;
  put_bytes buf o.data;
  put_u32 buf o.bss_size;
  put_u32 buf (List.length o.symbols);
  List.iter (put_symbol buf) o.symbols;
  put_u32 buf (List.length o.relocs);
  List.iter (put_reloc buf) o.relocs;
  put_u32 buf (List.length o.ctors);
  List.iter (put_string buf) o.ctors;
  Buffer.to_bytes buf

(* -- decoding ---------------------------------------------------------- *)

type cursor = { src : Bytes.t; mutable pos : int }

let need c n =
  if c.pos + n > Bytes.length c.src then raise (Decode_error "truncated object file")

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.src c.pos in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Bytes.get_int32_le c.src c.pos in
  c.pos <- c.pos + 4;
  Int32.to_int v land 0xFFFFFFFF

let get_i32 c =
  need c 4;
  let v = Bytes.get_int32_le c.src c.pos in
  c.pos <- c.pos + 4;
  Int32.to_int v

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = Bytes.sub_string c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_bytes c =
  let n = get_u32 c in
  need c n;
  let b = Bytes.sub c.src c.pos n in
  c.pos <- c.pos + n;
  b

let binding_of_code = function
  | 0 -> Symbol.Local
  | 1 -> Symbol.Global
  | 2 -> Symbol.Weak
  | n -> raise (Decode_error (Printf.sprintf "bad binding code %d" n))

let kind_of_code = function
  | 0 -> Symbol.Text
  | 1 -> Symbol.Data
  | 2 -> Symbol.Bss
  | 3 -> Symbol.Abs
  | 4 -> Symbol.Undef
  | n -> raise (Decode_error (Printf.sprintf "bad kind code %d" n))

let get_symbol c : Symbol.t =
  let name = get_string c in
  let binding = binding_of_code (get_u8 c) in
  let kind = kind_of_code (get_u8 c) in
  let value = get_u32 c in
  let size = get_u32 c in
  { name; binding; kind; value; size }

let get_reloc c : Reloc.t =
  let target =
    match get_u8 c with
    | 0 -> Reloc.In_text
    | 1 -> Reloc.In_data
    | n -> raise (Decode_error (Printf.sprintf "bad reloc target %d" n))
  in
  let kind =
    match get_u8 c with
    | 0 -> Reloc.Abs32
    | 1 -> Reloc.Pcrel32
    | n -> raise (Decode_error (Printf.sprintf "bad reloc kind %d" n))
  in
  let offset = get_u32 c in
  let symbol = get_string c in
  let addend = get_i32 c in
  { target; offset; kind; symbol; addend }

let rec get_list c n f = if n = 0 then [] else let x = f c in x :: get_list c (n - 1) f

(** [decode b] parses bytes produced by {!encode}. Raises
    {!Decode_error} on malformed input. *)
let decode (b : Bytes.t) : Object_file.t =
  let c = { src = b; pos = 0 } in
  need c 4;
  let m = Bytes.sub_string b 0 4 in
  if m <> magic then raise (Decode_error ("bad magic " ^ String.escaped m));
  c.pos <- 4;
  let name = get_string c in
  let text = get_bytes c in
  let data = get_bytes c in
  let bss_size = get_u32 c in
  let symbols = get_list c (get_u32 c) get_symbol in
  let relocs = get_list c (get_u32 c) get_reloc in
  let ctors = get_list c (get_u32 c) get_string in
  { name; text; data; bss_size; symbols; relocs; ctors }

(** Stable content digest of an object file, used as a cache key
    component. *)
let digest (o : Object_file.t) : string = Digest.to_hex (Digest.bytes (encode o))
