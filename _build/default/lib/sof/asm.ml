(** A small structured assembler producing SOF object files.

    Used by the minic code generator, by the stub/wrapper synthesizers
    in the server (partial-image stubs, monitoring wrappers, PLT entries
    of the baseline dynamic scheme), and by tests. The builder is
    imperative: emit labels, instructions (optionally carrying a
    relocation against a symbol), data items, and bss reservations, then
    {!finish}. *)

type t = {
  name : string;
  text : Buffer.t;
  data : Buffer.t;
  mutable bss_size : int;
  mutable symbols : Symbol.t list; (* reversed *)
  mutable relocs : Reloc.t list; (* reversed *)
  mutable ctors : string list; (* reversed *)
}

let create (name : string) : t =
  {
    name;
    text = Buffer.create 256;
    data = Buffer.create 64;
    bss_size = 0;
    symbols = [];
    relocs = [];
    ctors = [];
  }

let here_text (a : t) = Buffer.length a.text
let here_data (a : t) = Buffer.length a.data

let add_symbol (a : t) (s : Symbol.t) = a.symbols <- s :: a.symbols

(** Place a text label at the current text position. *)
let label ?(binding = Symbol.Global) (a : t) (name : string) : unit =
  add_symbol a (Symbol.make ~binding ~kind:Symbol.Text ~value:(here_text a) name)

(** Declare an external symbol explicitly (normally implicit via use). *)
let extern (a : t) (name : string) : unit = add_symbol a (Symbol.undef name)

(** Emit one instruction. *)
let instr (a : t) (i : Svm.Isa.instr) : unit =
  Buffer.add_bytes a.text (Svm.Encode.encode i)

let instrs (a : t) (is : Svm.Isa.instr list) : unit = List.iter (instr a) is

(* Emit an instruction whose immediate field is a relocation site. *)
let instr_reloc (a : t) (i : Svm.Isa.instr) (kind : Reloc.kind) (sym : string)
    (addend : int) : unit =
  let offset = here_text a + Svm.Isa.imm_offset in
  a.relocs <- Reloc.make ~addend ~target:Reloc.In_text ~offset ~kind sym :: a.relocs;
  instr a i

(** [call a sym] emits [call sym] (absolute, relocated). *)
let call (a : t) (sym : string) : unit =
  instr_reloc a (Svm.Isa.Call 0l) Reloc.Abs32 sym 0

(** [jmp_sym a sym] emits [jmp sym] (absolute, relocated). *)
let jmp_sym (a : t) (sym : string) : unit =
  instr_reloc a (Svm.Isa.Jmp 0l) Reloc.Abs32 sym 0

(** [lea a rd sym] loads the address of [sym] into [rd]. *)
let lea ?(addend = 0) (a : t) (rd : int) (sym : string) : unit =
  instr_reloc a (Svm.Isa.Lea (rd, 0l)) Reloc.Abs32 sym addend

(** Forward/backward local branches by label, fixed up at [finish]
    time, would complicate the builder; the code generators compute
    branch displacements themselves. Helpers below cover the common
    patterns. *)

(** Place a data label at the current data position. *)
let data_label ?(binding = Symbol.Global) (a : t) (name : string) : unit =
  add_symbol a (Symbol.make ~binding ~kind:Symbol.Data ~value:(here_data a) name)

let data_word (a : t) (v : int32) : unit = Buffer.add_int32_le a.data v

(** Emit a data word holding the address of [sym] (data relocation). *)
let data_word_sym ?(addend = 0) (a : t) (sym : string) : unit =
  let offset = here_data a in
  a.relocs <-
    Reloc.make ~addend ~target:Reloc.In_data ~offset ~kind:Reloc.Abs32 sym :: a.relocs;
  data_word a 0l

(** Emit a NUL-terminated string in the data section. *)
let data_string (a : t) (s : string) : unit =
  Buffer.add_string a.data s;
  Buffer.add_char a.data '\000';
  (* keep words aligned for subsequent word data *)
  while Buffer.length a.data mod 4 <> 0 do
    Buffer.add_char a.data '\000'
  done

let data_bytes (a : t) (b : Bytes.t) : unit = Buffer.add_bytes a.data b

(** Reserve [size] bytes of bss under [name]. *)
let bss ?(binding = Symbol.Global) (a : t) (name : string) (size : int) : unit =
  add_symbol a (Symbol.make ~binding ~size ~kind:Symbol.Bss ~value:a.bss_size name);
  a.bss_size <- a.bss_size + ((size + 3) / 4 * 4)

(** Register [name] as a static initializer (run before main). *)
let ctor (a : t) (name : string) : unit = a.ctors <- name :: a.ctors

(** [set_symbol_size a name size] records the size of an
    already-placed symbol (e.g. a function, once its body is known). *)
let set_symbol_size (a : t) (name : string) (size : int) : unit =
  a.symbols <-
    List.map
      (fun (s : Symbol.t) -> if s.name = name then { s with Symbol.size } else s)
      a.symbols

(** Emit an absolute constant symbol. *)
let abs_symbol ?(binding = Symbol.Global) (a : t) (name : string) (value : int) : unit =
  add_symbol a (Symbol.make ~binding ~kind:Symbol.Abs ~value name)

(** Finish and validate the object file. Relocation symbols without a
    definition or explicit [extern] get an undefined symbol entry
    automatically. *)
let finish (a : t) : Object_file.t =
  let present = Hashtbl.create 16 in
  List.iter (fun (s : Symbol.t) -> Hashtbl.replace present s.name ()) a.symbols;
  List.iter
    (fun (r : Reloc.t) ->
      if not (Hashtbl.mem present r.symbol) then (
        Hashtbl.replace present r.symbol ();
        add_symbol a (Symbol.undef r.symbol)))
    a.relocs;
  Object_file.make ~name:a.name
    ~data:(Buffer.to_bytes a.data)
    ~bss_size:a.bss_size
    ~relocs:(List.rev a.relocs)
    ~ctors:(List.rev a.ctors)
    ~text:(Buffer.to_bytes a.text)
    (List.rev a.symbols)
