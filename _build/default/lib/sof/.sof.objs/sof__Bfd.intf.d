lib/sof/bfd.mli: Bytes Object_file
