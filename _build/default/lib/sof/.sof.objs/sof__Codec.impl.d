lib/sof/codec.ml: Buffer Bytes Digest Int32 List Object_file Printf Reloc String Symbol
