lib/sof/symbol.ml: Format
