lib/sof/reloc.mli: Format
