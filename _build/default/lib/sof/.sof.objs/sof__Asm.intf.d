lib/sof/asm.mli: Buffer Bytes Object_file Reloc Svm Symbol
