lib/sof/object_file.ml: Bytes Format Hashtbl List Reloc String Svm Symbol
