lib/sof/asm.ml: Buffer Bytes Hashtbl List Object_file Reloc Svm Symbol
