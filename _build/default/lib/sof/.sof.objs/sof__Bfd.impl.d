lib/sof/bfd.ml: Aout Bytes Codec List Object_file String
