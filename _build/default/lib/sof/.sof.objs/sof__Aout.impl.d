lib/sof/aout.ml: Buffer Bytes Hashtbl Int32 List Object_file Printf Reloc Symbol
