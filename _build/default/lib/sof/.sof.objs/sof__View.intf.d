lib/sof/view.mli: Object_file
