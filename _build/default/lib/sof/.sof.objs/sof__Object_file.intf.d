lib/sof/object_file.mli: Bytes Format Reloc Symbol
