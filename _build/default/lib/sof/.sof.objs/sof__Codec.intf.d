lib/sof/codec.mli: Bytes Object_file
