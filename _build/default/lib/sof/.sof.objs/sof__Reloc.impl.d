lib/sof/reloc.ml: Format
