lib/sof/aout.mli: Buffer Bytes Hashtbl Object_file Symbol
