lib/sof/symbol.mli: Format
