lib/sof/view.ml: Hashtbl List Object_file Option Reloc Symbol
