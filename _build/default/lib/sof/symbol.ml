(** Symbols of the SOF relocatable object format.

    A symbol is either a {e definition} (it names a location in the
    text, data, or bss section of its object file, or an absolute
    value), or an {e undefined} reference to be satisfied by another
    object at merge/link time. *)

type binding =
  | Local (* invisible outside the defining object *)
  | Global (* exported; duplicate globals are a link error *)
  | Weak (* exported; loses against a Global of the same name *)

type kind =
  | Text (* value = offset into the text section *)
  | Data (* value = offset into the data section *)
  | Bss (* value = offset into the bss segment *)
  | Abs (* value = literal constant *)
  | Undef (* reference; value ignored *)

type t = { name : string; binding : binding; kind : kind; value : int; size : int }

let make ?(binding = Global) ?(size = 0) ~kind ~value name =
  { name; binding; kind; value; size }

let undef name = { name; binding = Global; kind = Undef; value = 0; size = 0 }

let is_defined s = s.kind <> Undef
let is_exported s = is_defined s && (s.binding = Global || s.binding = Weak)

let binding_to_string = function
  | Local -> "local"
  | Global -> "global"
  | Weak -> "weak"

let kind_to_string = function
  | Text -> "text"
  | Data -> "data"
  | Bss -> "bss"
  | Abs -> "abs"
  | Undef -> "undef"

let pp ppf s =
  Format.fprintf ppf "%s %s %s 0x%x/%d" s.name (binding_to_string s.binding)
    (kind_to_string s.kind) s.value s.size

let equal (a : t) (b : t) = a = b
