(** An a.out-style second object-file format.

    The paper's OMOS understood HP SOM and a.out, and was being fitted
    with GNU BFD as a portability layer (§7). This module is the
    reproduction's second backend: a classic fixed-header layout —
    header with section sizes and table counts, fixed-size symbol and
    relocation records referencing a trailing string table — quite
    unlike {!Codec}'s length-prefixed stream. {!Bfd} dispatches between
    the two by magic. *)

exception Decode_error of string

let magic = "AOUT"

(* header: magic, text, data, bss, nsyms, nrelocs, nctors, strtab size,
   name offset — 9 * 4 bytes *)
let header_size = 36
let sym_entry_size = 16 (* name_off, binding|kind, value, size *)
let rel_entry_size = 16 (* target|kind, offset, name_off, addend *)

(* string table builder with interning *)
type strtab = { buf : Buffer.t; index : (string, int) Hashtbl.t }

let strtab_create () = { buf = Buffer.create 64; index = Hashtbl.create 16 }

let strtab_add (t : strtab) (s : string) : int =
  match Hashtbl.find_opt t.index s with
  | Some off -> off
  | None ->
      let off = Buffer.length t.buf in
      Buffer.add_string t.buf s;
      Buffer.add_char t.buf '\000';
      Hashtbl.replace t.index s off;
      off

let binding_code = function Symbol.Local -> 0 | Symbol.Global -> 1 | Symbol.Weak -> 2

let kind_code = function
  | Symbol.Text -> 0
  | Symbol.Data -> 1
  | Symbol.Bss -> 2
  | Symbol.Abs -> 3
  | Symbol.Undef -> 4

(** [encode o] lays out [o] in the a.out-style format:
    header | text | data | symbols | relocs | ctor name offsets | strtab. *)
let encode (o : Object_file.t) : Bytes.t =
  let strtab = strtab_create () in
  let name_off = strtab_add strtab o.Object_file.name in
  let syms =
    List.map
      (fun (s : Symbol.t) ->
        (strtab_add strtab s.name, binding_code s.binding, kind_code s.kind, s.value, s.size))
      o.Object_file.symbols
  in
  let rels =
    List.map
      (fun (r : Reloc.t) ->
        let t = match r.target with Reloc.In_text -> 0 | Reloc.In_data -> 1 in
        let k = match r.kind with Reloc.Abs32 -> 0 | Reloc.Pcrel32 -> 1 in
        ((t lsl 1) lor k, r.offset, strtab_add strtab r.symbol, r.addend))
      o.Object_file.relocs
  in
  let ctor_offs = List.map (strtab_add strtab) o.Object_file.ctors in
  let strtab_bytes = Buffer.to_bytes strtab.buf in
  let total =
    header_size + Bytes.length o.Object_file.text + Bytes.length o.Object_file.data
    + (List.length syms * sym_entry_size)
    + (List.length rels * rel_entry_size)
    + (List.length ctor_offs * 4)
    + Bytes.length strtab_bytes
  in
  let out = Bytes.create total in
  let pos = ref 0 in
  let put32 v =
    Bytes.set_int32_le out !pos (Int32.of_int v);
    pos := !pos + 4
  in
  Bytes.blit_string magic 0 out 0 4;
  pos := 4;
  put32 (Bytes.length o.Object_file.text);
  put32 (Bytes.length o.Object_file.data);
  put32 o.Object_file.bss_size;
  put32 (List.length syms);
  put32 (List.length rels);
  put32 (List.length ctor_offs);
  put32 (Bytes.length strtab_bytes);
  put32 name_off;
  Bytes.blit o.Object_file.text 0 out !pos (Bytes.length o.Object_file.text);
  pos := !pos + Bytes.length o.Object_file.text;
  Bytes.blit o.Object_file.data 0 out !pos (Bytes.length o.Object_file.data);
  pos := !pos + Bytes.length o.Object_file.data;
  List.iter
    (fun (noff, b, k, v, sz) ->
      put32 noff;
      put32 ((b lsl 8) lor k);
      put32 v;
      put32 sz)
    syms;
  List.iter
    (fun (tk, off, noff, add) ->
      put32 tk;
      put32 off;
      put32 noff;
      put32 (add land 0xFFFFFFFF))
    rels;
  List.iter put32 ctor_offs;
  Bytes.blit strtab_bytes 0 out !pos (Bytes.length strtab_bytes);
  out

(** [decode b] parses bytes produced by {!encode}. *)
let decode (b : Bytes.t) : Object_file.t =
  if Bytes.length b < header_size then raise (Decode_error "truncated a.out header");
  if Bytes.sub_string b 0 4 <> magic then raise (Decode_error "bad a.out magic");
  let get32 off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF in
  let geti32 off = Int32.to_int (Bytes.get_int32_le b off) in
  let text_size = get32 4 in
  let data_size = get32 8 in
  let bss_size = get32 12 in
  let nsyms = get32 16 in
  let nrels = get32 20 in
  let nctors = get32 24 in
  let strtab_size = get32 28 in
  let name_off = get32 32 in
  let text_off = header_size in
  let data_off = text_off + text_size in
  let syms_off = data_off + data_size in
  let rels_off = syms_off + (nsyms * sym_entry_size) in
  let ctors_off = rels_off + (nrels * rel_entry_size) in
  let strtab_off = ctors_off + (nctors * 4) in
  if strtab_off + strtab_size > Bytes.length b then
    raise (Decode_error "truncated a.out file");
  let string_at off =
    if off >= strtab_size then raise (Decode_error "string offset out of range");
    let abs = strtab_off + off in
    let rec find_end i =
      if i >= Bytes.length b then raise (Decode_error "unterminated string")
      else if Bytes.get b i = '\000' then i
      else find_end (i + 1)
    in
    Bytes.sub_string b abs (find_end abs - abs)
  in
  let binding_of = function
    | 0 -> Symbol.Local
    | 1 -> Symbol.Global
    | 2 -> Symbol.Weak
    | n -> raise (Decode_error (Printf.sprintf "bad binding %d" n))
  in
  let kind_of = function
    | 0 -> Symbol.Text
    | 1 -> Symbol.Data
    | 2 -> Symbol.Bss
    | 3 -> Symbol.Abs
    | 4 -> Symbol.Undef
    | n -> raise (Decode_error (Printf.sprintf "bad kind %d" n))
  in
  let symbols =
    List.init nsyms (fun i ->
        let base = syms_off + (i * sym_entry_size) in
        let bk = get32 (base + 4) in
        {
          Symbol.name = string_at (get32 base);
          binding = binding_of (bk lsr 8);
          kind = kind_of (bk land 0xff);
          value = get32 (base + 8);
          size = get32 (base + 12);
        })
  in
  let relocs =
    List.init nrels (fun i ->
        let base = rels_off + (i * rel_entry_size) in
        let tk = get32 base in
        {
          Reloc.target = (if tk lsr 1 = 0 then Reloc.In_text else Reloc.In_data);
          kind = (if tk land 1 = 0 then Reloc.Abs32 else Reloc.Pcrel32);
          offset = get32 (base + 4);
          symbol = string_at (get32 (base + 8));
          addend = geti32 (base + 12);
        })
  in
  let ctors = List.init nctors (fun i -> string_at (get32 (ctors_off + (i * 4)))) in
  {
    Object_file.name = string_at name_off;
    text = Bytes.sub b text_off text_size;
    data = Bytes.sub b data_off data_size;
    bss_size;
    symbols;
    relocs;
    ctors;
  }
