(** Binary serialization of SOF object files — the native on-"disk"
    representation (magic ["SOF1"], length-prefixed fields) used by the
    simulated filesystem and the image cache's digests. The a.out-style
    alternative lives in {!Aout}; {!Bfd} switches between them. *)

exception Decode_error of string

(** The native format's magic, ["SOF1"]. *)
val magic : string

val encode : Object_file.t -> Bytes.t

(** @raise Decode_error on malformed input. *)
val decode : Bytes.t -> Object_file.t

(** Stable content digest, used as a cache key component. *)
val digest : Object_file.t -> string
