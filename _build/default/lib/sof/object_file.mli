(** SOF relocatable object files.

    SOF plays the role a.out/SOM played for the original OMOS: the
    "convenient intermediate form" between source and the executing
    memory image. An object file bundles a text section (SVM code), an
    initialized data section, a bss size, a symbol table, relocations,
    and the list of static-initializer entry points. *)

exception Invalid of string

type t = {
  name : string;  (** provenance label, e.g. "/obj/ls.o" *)
  text : Bytes.t;
  data : Bytes.t;
  bss_size : int;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
  ctors : string list;  (** static-initializer functions, in run order *)
}

(** Byte capacity of the section a symbol kind addresses. *)
val section_size : t -> Symbol.kind -> int

(** Check internal consistency: symbol values within their sections,
    relocation sites in range and on instruction immediates, every
    relocation symbol present, instruction-aligned text.
    @raise Invalid with a diagnostic on failure. *)
val validate : t -> t

(** Build and {!validate} an object file. *)
val make :
  ?data:Bytes.t ->
  ?bss_size:int ->
  ?relocs:Reloc.t list ->
  ?ctors:string list ->
  name:string ->
  text:Bytes.t ->
  Symbol.t list ->
  t

val empty : string -> t

(** Definitions exported from this object (global or weak, defined). *)
val exported : t -> Symbol.t list

(** All defined symbols, including locals. *)
val defined : t -> Symbol.t list

(** Names this object references but does not define. *)
val undefined : t -> string list

(** The exported definition of a name, if any (Global beats Weak). *)
val find_exported : t -> string -> Symbol.t option

val find_symbol : t -> string -> Symbol.t option

(** Does the object define [name] (at any visibility)? *)
val defines : t -> string -> bool

(** Number of relocations — the quantity the paper's timing argument
    revolves around. *)
val reloc_count : t -> int

(** Relocations whose symbol is not defined locally. *)
val external_reloc_count : t -> int

(** text + data + bss bytes. *)
val total_size : t -> int

val pp : Format.formatter -> t -> unit
