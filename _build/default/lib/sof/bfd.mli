(** The object-format switch (the paper's BFD role, §7): one interface
    over the native {!Codec} stream format and the a.out-style {!Aout}
    layout, dispatching on the file's magic. *)

exception Unknown_format of string

type format = Native | Aout_style

(** (name, format) pairs: ["sof"] and ["aout"]. *)
val all_formats : (string * format) list

(** @raise Unknown_format. *)
val format_of_string : string -> format

val format_name : format -> string

(** Identify the format of the bytes, if any backend claims them. *)
val detect : Bytes.t -> format option

val encode : format -> Object_file.t -> Bytes.t

(** Decode in whichever format the bytes are in.
    @raise Unknown_format if no backend recognizes the magic. *)
val decode : Bytes.t -> Object_file.t

(** Re-encode an object file in another backend's format. *)
val convert : to_:format -> Bytes.t -> Bytes.t
