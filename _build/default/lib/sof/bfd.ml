(** The object-format switch (the paper's BFD role, §7).

    "A promising route for future portability is the GNU project's BFD
    library ... It contains an array of object-format specific
    backends." OMOS encapsulated its format knowledge behind one
    interface; this module is that interface for the reproduction's two
    backends — the native {!Codec} stream format and the a.out-style
    {!Aout} layout — dispatching on the file's magic. *)

exception Unknown_format of string

type format = Native | Aout_style

let all_formats = [ ("sof", Native); ("aout", Aout_style) ]

let format_of_string (s : string) : format =
  match List.assoc_opt (String.lowercase_ascii s) all_formats with
  | Some f -> f
  | None -> raise (Unknown_format s)

let format_name = function Native -> "sof" | Aout_style -> "aout"

(** Identify the format of [b] by magic, if any backend claims it. *)
let detect (b : Bytes.t) : format option =
  if Bytes.length b < 4 then None
  else
    match Bytes.sub_string b 0 4 with
    | m when m = Codec.magic -> Some Native
    | m when m = Aout.magic -> Some Aout_style
    | _ -> None

let encode (fmt : format) (o : Object_file.t) : Bytes.t =
  match fmt with Native -> Codec.encode o | Aout_style -> Aout.encode o

(** Decode in whichever format the bytes are in. *)
let decode (b : Bytes.t) : Object_file.t =
  match detect b with
  | Some Native -> Codec.decode b
  | Some Aout_style -> Aout.decode b
  | None -> raise (Unknown_format "unrecognized object file magic")

(** Re-encode an object file in another backend's format. *)
let convert ~(to_ : format) (b : Bytes.t) : Bytes.t = encode to_ (decode b)
