(** An a.out-style second object-file format.

    The paper's OMOS understood HP SOM and a.out, and was being fitted
    with GNU BFD as a portability layer (§7). This module is the
    reproduction's second backend: a classic fixed-header layout —
    header with section sizes and table counts, fixed-size symbol and
    relocation records referencing a trailing string table — quite
    unlike {!Codec}'s length-prefixed stream. {!Bfd} dispatches between
    the two by magic. *)

exception Decode_error of string
val magic : string
val header_size : int
val sym_entry_size : int
val rel_entry_size : int
type strtab = { buf : Buffer.t; index : (string, int) Hashtbl.t; }
val strtab_create : unit -> strtab
val strtab_add : strtab -> string -> int
val binding_code : Symbol.binding -> int
val kind_code : Symbol.kind -> int
val encode : Object_file.t -> Bytes.t
val decode : Bytes.t -> Object_file.t
