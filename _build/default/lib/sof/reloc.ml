(** Relocation entries of the SOF format.

    A relocation names a 32-bit patch site within the text or data
    section and the symbol whose final address (plus [addend]) is to be
    written there. Text-section sites always fall on the immediate field
    of an SVM instruction; data-section sites are pointers embedded in
    initialized data. *)

type target = In_text | In_data

type kind =
  | Abs32 (* patch site := address(symbol) + addend *)
  | Pcrel32 (* patch site := address(symbol) + addend - (site_base + 8) *)

type t = { target : target; offset : int; kind : kind; symbol : string; addend : int }

let make ?(addend = 0) ~target ~offset ~kind symbol =
  { target; offset; kind; symbol; addend }

let target_to_string = function In_text -> "text" | In_data -> "data"
let kind_to_string = function Abs32 -> "ABS32" | Pcrel32 -> "PCREL32"

let pp ppf r =
  Format.fprintf ppf "%s+0x%x %s %s%+d" (target_to_string r.target) r.offset
    (kind_to_string r.kind) r.symbol r.addend

let equal (a : t) (b : t) = a = b
