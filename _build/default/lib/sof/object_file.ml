(** SOF relocatable object files.

    SOF plays the role a.out/SOM played for the original OMOS: the
    "convenient intermediate form" between source and the executing
    memory image. An object file bundles a text section (SVM code), an
    initialized data section, a bss size, a symbol table, relocations,
    and the list of static-initializer entry points (the paper's C++
    constructor problem, consumed by the [initializers] operator). *)

exception Invalid of string

type t = {
  name : string; (* provenance label, e.g. "/obj/ls.o" *)
  text : Bytes.t;
  data : Bytes.t;
  bss_size : int;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
  ctors : string list; (* static-initializer functions, in run order *)
}

let section_size (o : t) = function
  | Symbol.Text -> Bytes.length o.text
  | Symbol.Data -> Bytes.length o.data
  | Symbol.Bss -> o.bss_size
  | Symbol.Abs | Symbol.Undef -> max_int

(** [validate o] checks internal consistency: symbol values within their
    sections, relocation sites within their sections, every relocation
    symbol present in the symbol table, and instruction-aligned text
    relocations. Raises {!Invalid} with a diagnostic on failure. *)
let validate (o : t) : t =
  let fail fmt = Format.kasprintf (fun s -> raise (Invalid (o.name ^ ": " ^ s))) fmt in
  let names = Hashtbl.create 16 in
  List.iter
    (fun (s : Symbol.t) ->
      Hashtbl.replace names s.name ();
      if Symbol.is_defined s && s.kind <> Symbol.Abs then
        if s.value < 0 || s.value > section_size o s.kind then
          fail "symbol %s out of section range (0x%x)" s.name s.value)
    o.symbols;
  List.iter
    (fun (r : Reloc.t) ->
      let size =
        match r.target with
        | Reloc.In_text -> Bytes.length o.text
        | Reloc.In_data -> Bytes.length o.data
      in
      if r.offset < 0 || r.offset + 4 > size then
        fail "relocation site out of range (0x%x)" r.offset;
      (match r.target with
      | Reloc.In_text ->
          if r.offset mod Svm.Isa.width <> Svm.Isa.imm_offset then
            fail "text relocation at 0x%x not on an immediate field" r.offset
      | Reloc.In_data -> ());
      if not (Hashtbl.mem names r.symbol) then
        fail "relocation references unknown symbol %s" r.symbol)
    o.relocs;
  if Bytes.length o.text mod Svm.Isa.width <> 0 then
    fail "text size %d not instruction-aligned" (Bytes.length o.text);
  o

let make ?(data = Bytes.empty) ?(bss_size = 0) ?(relocs = []) ?(ctors = [])
    ~name ~text symbols =
  validate { name; text; data; bss_size; symbols; relocs; ctors }

let empty name =
  { name; text = Bytes.empty; data = Bytes.empty; bss_size = 0;
    symbols = []; relocs = []; ctors = [] }

(** Definitions exported from this object (global or weak, defined). *)
let exported (o : t) : Symbol.t list = List.filter Symbol.is_exported o.symbols

(** All defined symbols, including locals. *)
let defined (o : t) : Symbol.t list = List.filter Symbol.is_defined o.symbols

(** Names this object references but does not define: explicit [Undef]
    symbol-table entries plus any relocation symbols that lack a
    definition. *)
let undefined (o : t) : string list =
  let defs = Hashtbl.create 16 in
  List.iter
    (fun (s : Symbol.t) -> if Symbol.is_defined s then Hashtbl.replace defs s.name ())
    o.symbols;
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add n =
    if (not (Hashtbl.mem defs n)) && not (Hashtbl.mem seen n) then (
      Hashtbl.replace seen n ();
      out := n :: !out)
  in
  List.iter (fun (s : Symbol.t) -> if s.kind = Symbol.Undef then add s.name) o.symbols;
  List.iter (fun (r : Reloc.t) -> add r.symbol) o.relocs;
  List.rev !out

(** [find_exported o name] returns the exported definition of [name],
    if any. A [Global] definition wins over a [Weak] one. *)
let find_exported (o : t) (name : string) : Symbol.t option =
  let candidates =
    List.filter (fun (s : Symbol.t) -> s.name = name && Symbol.is_exported s) o.symbols
  in
  match List.find_opt (fun (s : Symbol.t) -> s.binding = Symbol.Global) candidates with
  | Some s -> Some s
  | None -> ( match candidates with s :: _ -> Some s | [] -> None)

let find_symbol (o : t) (name : string) : Symbol.t option =
  List.find_opt (fun (s : Symbol.t) -> s.name = name) o.symbols

(** Does [o] define [name] (at any visibility)? *)
let defines (o : t) (name : string) : bool =
  List.exists (fun (s : Symbol.t) -> s.name = name && Symbol.is_defined s) o.symbols

(** Number of relocations — the quantity the paper's timing argument
    revolves around (work proportional to external references). *)
let reloc_count (o : t) : int = List.length o.relocs

(** External relocations: those whose symbol is not defined locally. *)
let external_reloc_count (o : t) : int =
  let defs = Hashtbl.create 16 in
  List.iter
    (fun (s : Symbol.t) -> if Symbol.is_defined s then Hashtbl.replace defs s.name ())
    o.symbols;
  List.length (List.filter (fun (r : Reloc.t) -> not (Hashtbl.mem defs r.symbol)) o.relocs)

let total_size (o : t) : int = Bytes.length o.text + Bytes.length o.data + o.bss_size

let pp ppf (o : t) =
  Format.fprintf ppf "@[<v>object %s: text=%d data=%d bss=%d@,symbols:@," o.name
    (Bytes.length o.text) (Bytes.length o.data) o.bss_size;
  List.iter (fun s -> Format.fprintf ppf "  %a@," Symbol.pp s) o.symbols;
  Format.fprintf ppf "relocs:@,";
  List.iter (fun r -> Format.fprintf ppf "  %a@," Reloc.pp r) o.relocs;
  if o.ctors <> [] then
    Format.fprintf ppf "ctors: %s@," (String.concat ", " o.ctors);
  Format.fprintf ppf "@]"
