(** Relocation entries of the SOF format.

    A relocation names a 32-bit patch site within the text or data
    section and the symbol whose final address (plus [addend]) is to be
    written there. Text-section sites always fall on the immediate field
    of an SVM instruction; data-section sites are pointers embedded in
    initialized data. *)

type target = In_text | In_data
type kind = Abs32 | Pcrel32
type t = {
  target : target;
  offset : int;
  kind : kind;
  symbol : string;
  addend : int;
}
val make :
  ?addend:int -> target:target -> offset:int -> kind:kind -> string -> t
val target_to_string : target -> string
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
