(** A small structured assembler producing SOF object files.

    Used by the minic code generator, the server's stub/wrapper
    synthesizers (PLT entries, partial-image stubs, monitoring
    trampolines), and tests. The builder is imperative: emit labels,
    instructions (optionally carrying a relocation against a symbol),
    data items, and bss reservations, then {!finish}. *)

type t = {
  name : string;
  text : Buffer.t;
  data : Buffer.t;
  mutable bss_size : int;
  mutable symbols : Symbol.t list; (* reversed *)
  mutable relocs : Reloc.t list; (* reversed *)
  mutable ctors : string list; (* reversed *)
}

val create : string -> t

(** Current text/data emission offsets. *)
val here_text : t -> int

val here_data : t -> int

(** Place a text label at the current text position. *)
val label : ?binding:Symbol.binding -> t -> string -> unit

(** Declare an external symbol explicitly (normally implicit via use). *)
val extern : t -> string -> unit

(** Emit one instruction / several instructions. *)
val instr : t -> Svm.Isa.instr -> unit

val instrs : t -> Svm.Isa.instr list -> unit

(** Emit an instruction whose immediate field is a relocation site. *)
val instr_reloc : t -> Svm.Isa.instr -> Reloc.kind -> string -> int -> unit

(** [call a sym] emits [call sym] (absolute, relocated). *)
val call : t -> string -> unit

(** [jmp_sym a sym] emits [jmp sym] (absolute, relocated). *)
val jmp_sym : t -> string -> unit

(** [lea a rd sym] loads the address of [sym] (+[addend]) into [rd]. *)
val lea : ?addend:int -> t -> int -> string -> unit

(** Place a data label at the current data position. *)
val data_label : ?binding:Symbol.binding -> t -> string -> unit

val data_word : t -> int32 -> unit

(** Emit a data word holding the address of [sym] (data relocation). *)
val data_word_sym : ?addend:int -> t -> string -> unit

(** Emit a NUL-terminated string, padded to word alignment. *)
val data_string : t -> string -> unit

val data_bytes : t -> Bytes.t -> unit

(** Reserve [size] bytes of bss under a name (word-aligned). *)
val bss : ?binding:Symbol.binding -> t -> string -> int -> unit

(** Register a function as a static initializer (run before main). *)
val ctor : t -> string -> unit

(** Record the size of an already-placed symbol. *)
val set_symbol_size : t -> string -> int -> unit

(** Emit an absolute constant symbol. *)
val abs_symbol : ?binding:Symbol.binding -> t -> string -> int -> unit

(** Finish and validate the object file. Relocation symbols without a
    definition get an undefined symbol entry automatically. *)
val finish : t -> Object_file.t
