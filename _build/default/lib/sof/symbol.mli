(** Symbols of the SOF relocatable object format.

    A symbol is either a {e definition} (it names a location in the
    text, data, or bss section of its object file, or an absolute
    value), or an {e undefined} reference to be satisfied by another
    object at merge/link time. *)

type binding = Local | Global | Weak
type kind = Text | Data | Bss | Abs | Undef
type t = {
  name : string;
  binding : binding;
  kind : kind;
  value : int;
  size : int;
}
val make :
  ?binding:binding -> ?size:int -> kind:kind -> value:int -> string -> t
val undef : string -> t
val is_defined : t -> bool
val is_exported : t -> bool
val binding_to_string : binding -> string
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
