(** The `ls` workload — the paper's small test program.

    A faithful miniature of BSD ls built on the synthetic libc: lists a
    directory given as an argument, with the [-l] / [-a] / [-F] flags
    the paper's "ls -laF" measurement turns on. The plain listing is a
    thin readdir/write loop; the long listing does what the real one
    does — collect and {e sort} the entries (libc [sort_strings]),
    then per entry: stat, format a mode string ([fmt_mode]), print a
    right-aligned size column ([pad_int]), look up an owner name
    ([getuser]). The two variants therefore differ exactly where the
    paper's do: syscall count {e and} the amount of libc exercised. *)

val source : string
val obj : unit -> Sof.Object_file.t
