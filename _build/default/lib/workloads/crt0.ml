(** The C runtime startup object, [/lib/crt0.o] in the paper's
    meta-objects: run static initializers, call [main], exit with its
    result.

    [__init] has a weak empty default here; the [initializers] module
    operator overrides it with a generated driver when the program has
    constructors. *)

let obj () : Sof.Object_file.t =
  let a = Sof.Asm.create "/lib/crt0.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.call a "__init";
  Sof.Asm.call a "main";
  Sof.Asm.instr a (Svm.Isa.Mov (1, Svm.Isa.reg_ret));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_exit));
  (* unreachable; exit never returns *)
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.label ~binding:Sof.Symbol.Weak a "__init";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.finish a
