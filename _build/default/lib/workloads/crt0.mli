(** The C runtime startup object, [/lib/crt0.o] in the paper's
    meta-objects: run static initializers, call [main], exit with its
    result.

    [__init] has a weak empty default here; the [initializers] module
    operator overrides it with a generated driver when the program has
    constructors. *)

val obj : unit -> Sof.Object_file.t
