(** Filesystem datasets for the workloads.

    The paper's protocols: plain `ls` lists "a directory with a single
    entry"; `ls -laF` runs over a populated directory; codegen reads
    three small input files and writes one small output. *)

val dir_single : string
val dir_many : string
val default_many_entries : int
val install : ?many_entries:int -> Simos.Fs.t -> unit
