(** The synthetic C library.

    Mirrors the paper's Figure 1 libc: eight sections (gen, stdio,
    string, stdlib, hppa, net, quad, rpc) that OMOS merges into one
    library meta-object. The sections carry:

    - real, executable implementations of the routines the workloads
      need (string ops, stdio, allocator, syscall wrappers), and
    - deterministic generated "bulk" functions that give the library a
      realistic size, internal call chains, and data-table references —
      the unused code whose page-scattering the paper's working-set and
      reordering discussions are about.

    Each section is a separate translation unit; cross-section calls
    resolve at merge time exactly like the real libc members. *)

let b = Buffer.create 4096

let line fmt = Format.kasprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt

let take () =
  let s = Buffer.contents b in
  Buffer.clear b;
  s

(* Deterministic pseudo-random stream (no Random: keep builds stable). *)
let mix seed i = ((seed * 1103515245) + (i * 12345) + 0x2545F49) land 0x3FFFFFF

(* A generated bulk function. Calls its predecessor in the section
   (internal relocation + realistic call chain) and reads the section's
   data table (data relocation). *)
let gen_pad ~section ~index =
  let k1 = (mix 7 index mod 97) + 3 in
  let k2 = mix 11 index mod 8191 in
  let k3 = mix 13 index mod 255 in
  line "int libc_%s_%d(int x) {" section index;
  line "  int a; int b;";
  line "  a = x * %d + %d;" k1 k2;
  line "  b = (a >> 3) ^ %d;" k3;
  line "  a = a + %s_table[x & 63];" section;
  if index > 0 && index mod 3 <> 0 then
    line "  if ((b & 7) == 7) { a = a + libc_%s_%d(b %% 13); }" section (index - 1);
  line "  while (a > 1000000) { a = a - (b | 257) - 1000; }";
  line "  while (a < -1000000) { a = a + (b | 257) + 1000; }";
  line "  return a + b;";
  line "}"

let gen_section_preamble ~section ~pads =
  line "int %s_table[64];" section;
  for i = 0 to pads - 1 do
    gen_pad ~section ~index:i
  done

(* -- the eight sections ---------------------------------------------- *)

let src_string () =
  gen_section_preamble ~section:"string" ~pads:24;
  line "int strlen(int s) {";
  line "  int n; n = 0;";
  line "  while (__load8(s + n) != 0) { n = n + 1; }";
  line "  return n;";
  line "}";
  line "int strcpy(int d, int s) {";
  line "  int i; i = 0;";
  line "  while (__load8(s + i) != 0) { __store8(d + i, __load8(s + i)); i = i + 1; }";
  line "  __store8(d + i, 0);";
  line "  return d;";
  line "}";
  line "int strcat(int d, int s) { strcpy(d + strlen(d), s); return d; }";
  line "int strcmp(int a, int b) {";
  line "  int i; int ca; int cb; i = 0;";
  line "  while (1) {";
  line "    ca = __load8(a + i); cb = __load8(b + i);";
  line "    if (ca != cb) return ca - cb;";
  line "    if (ca == 0) return 0;";
  line "    i = i + 1;";
  line "  }";
  line "  return 0;";
  line "}";
  line "int memset(int p, int c, int n) {";
  line "  int i; i = 0;";
  line "  while (i < n) { __store8(p + i, c); i = i + 1; }";
  line "  return p;";
  line "}";
  line "int memcpy(int d, int s, int n) {";
  line "  int i; i = 0;";
  line "  while (i < n) { __store8(d + i, __load8(s + i)); i = i + 1; }";
  line "  return d;";
  line "}";
  take ()

let src_stdio () =
  gen_section_preamble ~section:"stdio" ~pads:24;
  line "int write(int fd, int buf, int len) { return __syscall(1, fd, buf, len); }";
  line "int putstr(int s) { return write(1, s, strlen(s)); }";
  line "int puts(int s) { putstr(s); return write(1, \"\\n\", 1); }";
  line "int __pc_buf;";
  line "int putchar(int c) { __store8(&__pc_buf, c); write(1, &__pc_buf, 1); return c; }";
  line "int __itoa_tmp[16];";
  line "int itoa(int n, int buf) {";
  line "  int i; int j; int neg;";
  line "  i = 0; j = 0; neg = 0;";
  line "  if (n < 0) { neg = 1; n = 0 - n; }";
  line "  if (n == 0) { __store8(buf + 0, 48); __store8(buf + 1, 0); return 1; }";
  line "  while (n > 0) { __itoa_tmp[i] = 48 + (n %% 10); n = n / 10; i = i + 1; }";
  line "  if (neg) { __store8(buf + j, 45); j = j + 1; }";
  line "  while (i > 0) { i = i - 1; __store8(buf + j, __itoa_tmp[i]); j = j + 1; }";
  line "  __store8(buf + j, 0);";
  line "  return j;";
  line "}";
  line "int __numbuf[8];";
  line "int putint(int n) { int l; l = itoa(n, &__numbuf); return write(1, &__numbuf, l); }";
  take ()

let src_stdlib () =
  gen_section_preamble ~section:"stdlib" ~pads:24;
  line "int __heap_next;";
  line "int malloc(int n) {";
  line "  int p;";
  line "  if (__heap_next == 0) { __heap_next = 0x60000000; }";
  line "  p = __heap_next;";
  line "  __heap_next = __heap_next + ((n + 3) / 4) * 4;";
  line "  return p;";
  line "}";
  line "int free(int p) { return 0; }";
  line "int abs(int x) { if (x < 0) return 0 - x; return x; }";
  line "int imin(int a, int b) { if (a < b) return a; return b; }";
  line "int imax(int a, int b) { if (a < b) return b; return a; }";
  line "int atoi(int s) {";
  line "  int n; int i; int c;";
  line "  n = 0; i = 0; c = __load8(s);";
  line "  while (c >= 48 && c <= 57) { n = n * 10 + (c - 48); i = i + 1; c = __load8(s + i); }";
  line "  return n;";
  line "}";
  take ()

let src_gen () =
  gen_section_preamble ~section:"gen" ~pads:20;
  line "int open(int path) { return __syscall(2, path); }";
  line "int read(int fd, int buf, int len) { return __syscall(3, fd, buf, len); }";
  line "int close(int fd) { return __syscall(4, fd); }";
  line "int stat(int path, int out) { return __syscall(5, path, out); }";
  line "int readdir(int fd, int idx, int buf) { return __syscall(6, fd, idx, buf); }";
  line "int getpid() { return __syscall(8); }";
  line "int argc() { return __syscall(9); }";
  line "int getarg(int i, int buf, int maxlen) { return __syscall(10, i, buf, maxlen); }";
  line "int exit(int code) { return __syscall(0, code); }";
  take ()

(* Sections hppa/net/quad/rpc carry the "long listing" machinery real
   ls -l pulls in, placed after each section's bulk so the routines are
   scattered across distinct pages — exactly the working-set shape the
   deferred-relocation and reordering experiments depend on. *)

let src_quad () =
  gen_section_preamble ~section:"quad" ~pads:28;
  (* insertion sort of string pointers, via strcmp — the qsort stand-in
     ls -l uses to order its entries *)
  line "int sort_strings(int arr, int n) {";
  line "  int i; int j; int key;";
  line "  i = 1;";
  line "  while (i < n) {";
  line "    key = arr[i];";
  line "    j = i - 1;";
  line "    while (j >= 0 && strcmp(arr[j], key) > 0) {";
  line "      arr[j + 1] = arr[j];";
  line "      j = j - 1;";
  line "    }";
  line "    arr[j + 1] = key;";
  line "    i = i + 1;";
  line "  }";
  line "  return n;";
  line "}";
  take ()

let src_net () =
  gen_section_preamble ~section:"net" ~pads:48;
  line "char __u0[] = \"root\";";
  line "char __u1[] = \"daemon\";";
  line "char __u2[] = \"bin\";";
  line "char __u3[] = \"sys\";";
  line "char __u4[] = \"adm\";";
  line "char __u5[] = \"uucp\";";
  line "char __u6[] = \"lp\";";
  line "char __u7[] = \"nobody\";";
  line "int getuser(int uid) {";
  line "  int u; u = uid & 7;";
  line "  if (u == 0) return &__u0;";
  line "  if (u == 1) return &__u1;";
  line "  if (u == 2) return &__u2;";
  line "  if (u == 3) return &__u3;";
  line "  if (u == 4) return &__u4;";
  line "  if (u == 5) return &__u5;";
  line "  if (u == 6) return &__u6;";
  line "  return &__u7;";
  line "}";
  take ()

let src_rpc () =
  gen_section_preamble ~section:"rpc" ~pads:40;
  (* mode-string formatting: "drwxr-xr-x" style, 10 chars + NUL *)
  line "int fmt_mode(int kind, int perm, int buf) {";
  line "  int i; int bit;";
  line "  if (kind == 1) { __store8(buf, 100); } else { __store8(buf, 45); }";
  line "  i = 0;";
  line "  while (i < 9) {";
  line "    bit = (perm >> (8 - i)) & 1;";
  line "    if (bit) {";
  line "      if (i %% 3 == 0) __store8(buf + 1 + i, 114);";
  line "      if (i %% 3 == 1) __store8(buf + 1 + i, 119);";
  line "      if (i %% 3 == 2) __store8(buf + 1 + i, 120);";
  line "    } else {";
  line "      __store8(buf + 1 + i, 45);";
  line "    }";
  line "    i = i + 1;";
  line "  }";
  line "  __store8(buf + 10, 0);";
  line "  return buf;";
  line "}";
  take ()

let src_hppa () =
  gen_section_preamble ~section:"hppa" ~pads:64;
  (* right-aligned integer printing used by the -l column layout *)
  line "int pad_int(int n, int width) {";
  line "  int len; int i;";
  line "  len = itoa(n, &__padbuf);";
  line "  i = len;";
  line "  while (i < width) { putchar(32); i = i + 1; }";
  line "  return write(1, &__padbuf, len);";
  line "}";
  line "int __padbuf[8];";
  take ()

let section_names = [ "gen"; "stdio"; "string"; "stdlib"; "hppa"; "net"; "quad"; "rpc" ]

(** Source text of one libc section. *)
let section_source (section : string) : string =
  match section with
  | "gen" -> src_gen ()
  | "stdio" -> src_stdio ()
  | "string" -> src_string ()
  | "stdlib" -> src_stdlib ()
  | "hppa" -> src_hppa ()
  | "net" -> src_net ()
  | "quad" -> src_quad ()
  | "rpc" -> src_rpc ()
  | other -> invalid_arg ("unknown libc section " ^ other)

(** Compile every section: [(path, object)] pairs, paths as in
    Figure 1 ([/libc/gen] …). *)
let objects () : (string * Sof.Object_file.t) list =
  List.map
    (fun sec ->
      let path = "/libc/" ^ sec in
      (path, Minic.Driver.compile ~name:path (section_source sec)))
    section_names

(** Per-function objects of a section — the granularity the reordering
    transformation shuffles. *)
let split_objects (section : string) : Sof.Object_file.t list =
  Minic.Driver.compile_split ~name:("/libc/" ^ section) (section_source section)
