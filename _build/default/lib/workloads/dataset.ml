(** Filesystem datasets for the workloads.

    The paper's protocols: plain `ls` lists "a directory with a single
    entry"; `ls -laF` runs over a populated directory; codegen reads
    three small input files and writes one small output. *)

(** /data/one: the single-entry directory of the plain-ls timing. *)
let dir_single = "/data/one"

(** /data/many: the populated directory for ls -laF. *)
let dir_many = "/data/many"

let default_many_entries = 64

(** Install the datasets into a simulated filesystem. *)
let install ?(many_entries = default_many_entries) (fs : Simos.Fs.t) : unit =
  Simos.Fs.mkdir_p fs dir_single;
  Simos.Fs.write_file fs (dir_single ^ "/README")
    (Bytes.of_string "the single entry\n");
  Simos.Fs.mkdir_p fs dir_many;
  for i = 0 to many_entries - 1 do
    let name = Printf.sprintf "%s/file%03d.dat" dir_many i in
    Simos.Fs.write_file fs name (Bytes.make ((i mod 7) + 1) 'x')
  done;
  (* a few dot files and subdirectories for -a and -F *)
  Simos.Fs.write_file fs (dir_many ^ "/.hidden") (Bytes.of_string "h\n");
  Simos.Fs.write_file fs (dir_many ^ "/.profile") (Bytes.of_string "p\n");
  Simos.Fs.mkdir_p fs (dir_many ^ "/subdir");
  Simos.Fs.mkdir_p fs (dir_many ^ "/lib");
  (* codegen inputs *)
  Simos.Fs.mkdir_p fs "/input";
  Simos.Fs.write_file fs "/input/a" (Bytes.of_string "137\n");
  Simos.Fs.write_file fs "/input/b" (Bytes.of_string "4099\n");
  Simos.Fs.write_file fs "/input/c" (Bytes.of_string "77\n")
