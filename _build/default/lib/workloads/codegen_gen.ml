(** The `codegen` workload — the paper's large test program.

    The original is part of the Alpha_1 geometric modeling system:
    5,240 lines in 32 files, roughly 1,000 functions, ~289 KB of
    (debuggable) text and ~348 KB of data, linked against six libraries
    (two Alpha_1 libraries, libm, libl, libC, and libc). This generator
    reproduces those dimensions: 32 generated translation units with a
    deep cross-file call graph and fat per-file data tables, plus the
    four auxiliary libraries, all on top of the synthetic libc.

    Its run protocol also follows the paper: "a small input dataset
    which required reading three small files, and generated a single
    small file" — main reads /input/{a,b,c}, pushes values through a
    slice of the call graph, and writes a result. *)

let nfiles = 32
let funcs_per_file = 30

let b = Buffer.create 8192

let line fmt = Format.kasprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt

let take () =
  let s = Buffer.contents b in
  Buffer.clear b;
  s

let mix seed i = ((seed * 48271) + (i * 16807) + 0x9E3779B) land 0x3FFFFFF

(* One generated function. Cross-file calls target the previous file's
   same-index function, in-file calls the previous function; every
   function touches its file's data table. Occasional calls into the
   auxiliary libraries create the cross-library references. *)
let gen_func ~file ~index =
  let k1 = (mix 3 ((file * 100) + index) mod 89) + 2 in
  let k2 = mix 5 ((file * 100) + index) mod 4093 in
  line "int cg_%d_%d(int x) {" file index;
  line "  int a;";
  line "  a = x * %d + %d + cg_table_%d[x & 127];" k1 k2 file;
  (if index > 0 then
     line "  if ((a & 3) != 1) { a = a + cg_%d_%d(a %% 11); }" file (index - 1)
   else if file > 0 then
     line "  if ((a & 3) != 1) { a = a + cg_%d_%d(a %% 11); }" (file - 1)
       (funcs_per_file - 1));
  (match index mod 7 with
  | 0 -> line "  a = a + m_scale(x, %d);" (k1 + 1)
  | 2 -> line "  a = a + al_transform(x & 63);"
  | 4 -> line "  a = a + lc_box(x & 31);"
  | _ -> ());
  line "  return a ^ (a >> 3);";
  line "}"

(** Source of generated file [i] (unit /obj/codegen/file<i>.o). *)
let file_source (file : int) : string =
  line "int cg_table_%d[128];" file;
  for i = 0 to funcs_per_file - 1 do
    gen_func ~file ~index:i
  done;
  take ()

(* main: read the three input files, run values through entry functions
   of every fourth file, print a small result. *)
let main_source : string =
  let buf = Buffer.create 2048 in
  let l fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  l "int __inbuf[128];";
  l "int read_input(int path) {";
  l "  int fd; int n;";
  l "  fd = open(path);";
  l "  if (fd < 0) return 0;";
  l "  n = read(fd, &__inbuf, 256);";
  l "  close(fd);";
  l "  if (n <= 0) return 0;";
  l "  return atoi(&__inbuf);";
  l "}";
  l "int main() {";
  l "  int a; int b; int c; int acc; int i; int pass;";
  l "  a = read_input(\"/input/a\");";
  l "  b = read_input(\"/input/b\");";
  l "  c = read_input(\"/input/c\");";
  l "  acc = a + b * 3 + c * 7;";
  l "  pass = 0;";
  l "  while (pass < 120) {";
  l "    i = 0;";
  l "    while (i < %d) {" nfiles;
  l "      acc = acc ^ cg_dispatch(i, (acc + pass) & 1023);";
  l "      i = i + 2;";
  l "    }";
  l "    pass = pass + 1;";
  l "  }";
  l "  putstr(\"codegen: \");";
  l "  putint(acc);";
  l "  putstr(\"\\n\");";
  l "  return 0;";
  l "}";
  (* dispatcher: static call sites into the head function of each file *)
  l "int cg_dispatch(int which, int x) {";
  for f = 0 to nfiles - 1 do
    l "  if (which == %d) return cg_%d_%d(x);" f f (funcs_per_file - 1)
  done;
  l "  return 0;";
  l "}";
  Buffer.contents buf

(* -- auxiliary libraries -------------------------------------------------- *)

let lib_source ~prefix ~pads ~(real : string) : string =
  line "int %s_aux[64];" prefix;
  for i = 0 to pads - 1 do
    let k = (mix 17 i mod 61) + 2 in
    line "int %s_pad_%d(int x) {" prefix i;
    line "  int a;";
    line "  a = x * %d + %s_aux[x & 63];" k prefix;
    if i > 0 then line "  if ((a & 31) == 3) { a = a + %s_pad_%d(a %% 7); }" prefix (i - 1);
    line "  return a;";
    line "}"
  done;
  Buffer.add_string b real;
  take ()

(** The six libraries codegen links against (beyond crt0):
    [/lib/libm], [/lib/libl], [/lib/libC], [/lib/libal1], [/lib/libal2]
    — libc comes from {!Libc_gen}. *)
let libraries () : (string * Sof.Object_file.t) list =
  let compile path src = (path, Minic.Driver.compile ~name:path src) in
  [
    compile "/lib/libm"
      (lib_source ~prefix:"m" ~pads:24
         ~real:
           "int m_scale(int x, int k) { return x * k + (x >> 1); }\n\
            int m_sqrt_approx(int x) { int r; r = x; \
            while (r * r > x && r > 1) { r = (r + x / r) / 2; } return r; }\n");
    compile "/lib/libl"
      (lib_source ~prefix:"l" ~pads:12
         ~real:"int l_scan(int x) { return (x << 1) ^ (x >> 3); }\n");
    compile "/lib/libC"
      (lib_source ~prefix:"lc" ~pads:30
         ~real:"int lc_box(int x) { return x * 2 + 1; }\n\
                int lc_unbox(int x) { return (x - 1) / 2; }\n");
    compile "/lib/libal1"
      (lib_source ~prefix:"al" ~pads:40
         ~real:
           "int al_transform(int x) { return (x * 13 + 7) ^ (x >> 2); }\n\
            int al_compose(int x, int y) { return al_transform(x) + al_transform(y); }\n");
    compile "/lib/libal2"
      (lib_source ~prefix:"ag" ~pads:40
         ~real:"int ag_mesh(int x) { return al_transform(x) * 3; }\n");
  ]

(** The 32 generated translation units plus main, as [/obj/codegen/*]. *)
let objects () : (string * Sof.Object_file.t) list =
  let files =
    List.init nfiles (fun f ->
        let path = Printf.sprintf "/obj/codegen/file%02d.o" f in
        (path, Minic.Driver.compile ~name:path (file_source f)))
  in
  files @ [ ("/obj/codegen/main.o", Minic.Driver.compile ~name:"/obj/codegen/main.o" main_source) ]
