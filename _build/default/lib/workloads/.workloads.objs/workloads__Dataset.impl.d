lib/workloads/dataset.ml: Bytes Printf Simos
