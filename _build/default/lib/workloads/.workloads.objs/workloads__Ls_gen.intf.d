lib/workloads/ls_gen.mli: Sof
