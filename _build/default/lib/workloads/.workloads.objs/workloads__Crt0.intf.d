lib/workloads/crt0.mli: Sof
