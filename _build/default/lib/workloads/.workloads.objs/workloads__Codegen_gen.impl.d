lib/workloads/codegen_gen.ml: Buffer Format List Minic Printf Sof
