lib/workloads/dataset.mli: Simos
