lib/workloads/libc_gen.mli: Buffer Format Sof
