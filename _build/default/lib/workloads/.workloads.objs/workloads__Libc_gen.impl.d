lib/workloads/libc_gen.ml: Buffer Format List Minic Sof
