lib/workloads/crt0.ml: Int32 Simos Sof Svm
