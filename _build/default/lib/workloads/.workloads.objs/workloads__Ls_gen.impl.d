lib/workloads/ls_gen.ml: Minic Sof
