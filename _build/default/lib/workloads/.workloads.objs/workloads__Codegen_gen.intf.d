lib/workloads/codegen_gen.mli: Buffer Format Sof
