(** The synthetic C library.

    Mirrors the paper's Figure 1 libc: eight sections (gen, stdio,
    string, stdlib, hppa, net, quad, rpc) that OMOS merges into one
    library meta-object. The sections carry:

    - real, executable implementations of the routines the workloads
      need (string ops, stdio, allocator, syscall wrappers), and
    - deterministic generated "bulk" functions that give the library a
      realistic size, internal call chains, and data-table references —
      the unused code whose page-scattering the paper's working-set and
      reordering discussions are about.

    Each section is a separate translation unit; cross-section calls
    resolve at merge time exactly like the real libc members. *)

val b : Buffer.t
val line : ('a, Format.formatter, unit, unit) format4 -> 'a
val take : unit -> string
val mix : int -> int -> int
val gen_pad : section:string -> index:int -> unit
val gen_section_preamble : section:string -> pads:int -> unit
val src_string : unit -> string
val src_stdio : unit -> string
val src_stdlib : unit -> string
val src_gen : unit -> string
val src_quad : unit -> string
val src_net : unit -> string
val src_rpc : unit -> string
val src_hppa : unit -> string
val section_names : string list
val section_source : string -> string
val objects : unit -> (string * Sof.Object_file.t) list
val split_objects : string -> Sof.Object_file.t list
