(** The `codegen` workload — the paper's large test program.

    The original is part of the Alpha_1 geometric modeling system:
    5,240 lines in 32 files, roughly 1,000 functions, ~289 KB of
    (debuggable) text and ~348 KB of data, linked against six libraries
    (two Alpha_1 libraries, libm, libl, libC, and libc). This generator
    reproduces those dimensions: 32 generated translation units with a
    deep cross-file call graph and fat per-file data tables, plus the
    four auxiliary libraries, all on top of the synthetic libc.

    Its run protocol also follows the paper: "a small input dataset
    which required reading three small files, and generated a single
    small file" — main reads /input/{a,b,c}, pushes values through a
    slice of the call graph, and writes a result. *)

val nfiles : int
val funcs_per_file : int
val b : Buffer.t
val line : ('a, Format.formatter, unit, unit) format4 -> 'a
val take : unit -> string
val mix : int -> int -> int
val gen_func : file:int -> index:int -> unit
val file_source : int -> string
val main_source : string
val lib_source : prefix:string -> pads:int -> real:string -> string
val libraries : unit -> (string * Sof.Object_file.t) list
val objects : unit -> (string * Sof.Object_file.t) list
