(** The `ls` workload — the paper's small test program.

    A faithful miniature of BSD ls built on the synthetic libc: lists a
    directory given as an argument, with the [-l] / [-a] / [-F] flags
    the paper's "ls -laF" measurement turns on. The plain listing is a
    thin readdir/write loop; the long listing does what the real one
    does — collect and {e sort} the entries (libc [sort_strings]),
    then per entry: stat, format a mode string ([fmt_mode]), print a
    right-aligned size column ([pad_int]), look up an owner name
    ([getuser]). The two variants therefore differ exactly where the
    paper's do: syscall count {e and} the amount of libc exercised. *)

let source : string =
  {|
int __flag_l = 0;
int __flag_a = 0;
int __flag_F = 0;
int __pathbuf[64];
int __namebuf[64];
int __linebuf[96];
int __statbuf[2];
int __modebuf[4];
int __arena[2048];    /* 8 KB of entry-name storage */
int __ptrs[256];      /* entry pointers, sorted for -l */
int __arena_next = 0;

/* stash one entry name in the arena; returns its address */
int stash_name() {
  int p;
  p = &__arena + __arena_next;
  strcpy(p, &__namebuf);
  __arena_next = __arena_next + ((strlen(p) + 4) / 4) * 4;
  return p;
}

int full_path(int name) {
  strcpy(&__linebuf, &__pathbuf);
  strcat(&__linebuf, "/");
  strcat(&__linebuf, name);
  return &__linebuf;
}

int print_short(int name) {
  putstr(name);
  if (__flag_F) {
    if (stat(full_path(name), &__statbuf) == 0) {
      if (__statbuf[0] == 1) putstr("/");
    }
  }
  putstr("\n");
  return 0;
}

int print_long(int idx, int name) {
  if (stat(full_path(name), &__statbuf) != 0) return 0;
  fmt_mode(__statbuf[0], 493, &__modebuf);
  putstr(&__modebuf);
  putstr(" ");
  putstr(getuser(idx));
  putstr(" ");
  pad_int(__statbuf[1], 6);
  putstr(" ");
  putstr(name);
  if (__flag_F && __statbuf[0] == 1) putstr("/");
  putstr("\n");
  return 0;
}

int main() {
  int ac; int j; int fd; int i; int len; int c; int r; int n;
  ac = argc();
  j = 1;
  if (ac > j) {
    len = getarg(j, &__namebuf, 255);
    if (__load8(&__namebuf) == 45) {
      i = 1;
      while (i < len) {
        c = __load8(&__namebuf + i);
        if (c == 108) __flag_l = 1;
        if (c == 97) __flag_a = 1;
        if (c == 70) __flag_F = 1;
        i = i + 1;
      }
      j = j + 1;
    }
  }
  if (ac > j) {
    getarg(j, &__pathbuf, 255);
  } else {
    strcpy(&__pathbuf, ".");
  }
  fd = open(&__pathbuf);
  if (fd < 0) {
    putstr("ls: cannot open ");
    puts(&__pathbuf);
    return 1;
  }
  /* collect entries (respecting -a) */
  n = 0;
  i = 0;
  r = 0;
  while (r >= 0 && n < 256) {
    r = readdir(fd, i, &__namebuf);
    if (r >= 0) {
      c = __load8(&__namebuf);
      if (c != 46 || __flag_a) {
        __ptrs[n] = stash_name();
        n = n + 1;
      }
    }
    i = i + 1;
  }
  close(fd);
  if (__flag_l) {
    /* long listing: sorted, with mode/owner/size columns */
    sort_strings(&__ptrs, n);
    i = 0;
    while (i < n) {
      print_long(i, __ptrs[i]);
      i = i + 1;
    }
  } else {
    i = 0;
    while (i < n) {
      print_short(__ptrs[i]);
      i = i + 1;
    }
  }
  return 0;
}
|}

(** The relocatable object, [/obj/ls.o] in the paper's example. *)
let obj () : Sof.Object_file.t = Minic.Driver.compile ~name:"/obj/ls.o" source
