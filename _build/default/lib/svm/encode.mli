(** Binary encoding and decoding of SVM instructions. *)

exception Bad_instruction of string
val check_reg : int -> unit
val fields : Isa.instr -> int * int * int * int32
val encode_at : Bytes.t -> int -> Isa.instr -> unit
val encode : Isa.instr -> Bytes.t
val decode_fields :
  int -> Isa.reg -> Isa.reg -> Isa.reg -> int32 -> Isa.instr
val decode_at : Bytes.t -> int -> Isa.instr
val decode : Bytes.t -> Isa.instr
val assemble : Isa.instr list -> Bytes.t
val disassemble : Bytes.t -> Isa.instr list
