(** Instruction set of SVM, the simulated 32-bit machine.

    SVM stands in for the PA-RISC / i386 processors of the paper. It is a
    small RISC-like machine chosen so that linking is meaningful: code
    references data and other code through 32-bit absolute immediates
    (patched by [Abs32] relocations) and through pc-relative branch
    displacements (patched by [Pcrel32] relocations).

    Every instruction occupies {!width} bytes:
    byte 0 = opcode, byte 1 = rd, byte 2 = rs1, byte 3 = rs2,
    bytes 4..7 = 32-bit little-endian immediate. *)

val nregs : int
val reg_ret : int
val reg_acc : int
val reg_tmp : int
val reg_arg0 : int
val reg_fp : int
val reg_sp : int
val reg_ra : int
val width : int
type reg = int
type instr =
    Halt
  | Nop
  | Movi of reg * int32
  | Mov of reg * reg
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Mod of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Addi of reg * reg * int32
  | Cmpeq of reg * reg * reg
  | Cmplt of reg * reg * reg
  | Cmple of reg * reg * reg
  | Ld of reg * reg * int32
  | St of reg * reg * int32
  | Ldb of reg * reg * int32
  | Stb of reg * reg * int32
  | Lea of reg * int32
  | Jmp of int32
  | Jz of reg * int32
  | Jnz of reg * int32
  | Call of int32
  | Callr of reg
  | Jmpr of reg
  | Ret
  | Sys of int32
  | Br of int32
val opcode : instr -> int
val max_opcode : int
val imm_offset : int
val mnemonic : instr -> string
