(** Pretty-printing of SVM instructions and code sections, used by the
    OFE tool and by error messages. *)

let reg_name r =
  if r = Isa.reg_fp then "fp"
  else if r = Isa.reg_sp then "sp"
  else if r = Isa.reg_ra then "ra"
  else Printf.sprintf "r%d" r

let pp_instr ppf (i : Isa.instr) =
  let p fmt = Format.fprintf ppf fmt in
  let r = reg_name in
  match i with
  | Isa.Halt -> p "halt"
  | Isa.Nop -> p "nop"
  | Isa.Movi (rd, imm) -> p "movi %s, %ld" (r rd) imm
  | Isa.Mov (rd, rs1) -> p "mov %s, %s" (r rd) (r rs1)
  | Isa.Add (d, a, b) -> p "add %s, %s, %s" (r d) (r a) (r b)
  | Isa.Sub (d, a, b) -> p "sub %s, %s, %s" (r d) (r a) (r b)
  | Isa.Mul (d, a, b) -> p "mul %s, %s, %s" (r d) (r a) (r b)
  | Isa.Div (d, a, b) -> p "div %s, %s, %s" (r d) (r a) (r b)
  | Isa.Mod (d, a, b) -> p "mod %s, %s, %s" (r d) (r a) (r b)
  | Isa.And_ (d, a, b) -> p "and %s, %s, %s" (r d) (r a) (r b)
  | Isa.Or_ (d, a, b) -> p "or %s, %s, %s" (r d) (r a) (r b)
  | Isa.Xor (d, a, b) -> p "xor %s, %s, %s" (r d) (r a) (r b)
  | Isa.Shl (d, a, b) -> p "shl %s, %s, %s" (r d) (r a) (r b)
  | Isa.Shr (d, a, b) -> p "shr %s, %s, %s" (r d) (r a) (r b)
  | Isa.Addi (d, a, imm) -> p "addi %s, %s, %ld" (r d) (r a) imm
  | Isa.Cmpeq (d, a, b) -> p "cmpeq %s, %s, %s" (r d) (r a) (r b)
  | Isa.Cmplt (d, a, b) -> p "cmplt %s, %s, %s" (r d) (r a) (r b)
  | Isa.Cmple (d, a, b) -> p "cmple %s, %s, %s" (r d) (r a) (r b)
  | Isa.Ld (d, a, imm) -> p "ld %s, [%s%+ld]" (r d) (r a) imm
  | Isa.St (a, s, imm) -> p "st [%s%+ld], %s" (r a) imm (r s)
  | Isa.Ldb (d, a, imm) -> p "ldb %s, [%s%+ld]" (r d) (r a) imm
  | Isa.Stb (a, s, imm) -> p "stb [%s%+ld], %s" (r a) imm (r s)
  | Isa.Lea (d, imm) -> p "lea %s, 0x%lx" (r d) imm
  | Isa.Jmp imm -> p "jmp 0x%lx" imm
  | Isa.Jz (a, imm) -> p "jz %s, %+ld" (r a) imm
  | Isa.Jnz (a, imm) -> p "jnz %s, %+ld" (r a) imm
  | Isa.Call imm -> p "call 0x%lx" imm
  | Isa.Callr a -> p "callr %s" (r a)
  | Isa.Jmpr a -> p "jmpr %s" (r a)
  | Isa.Ret -> p "ret"
  | Isa.Sys imm -> p "sys %ld" imm
  | Isa.Br imm -> p "br %+ld" imm

let instr_to_string (i : Isa.instr) : string =
  Format.asprintf "%a" pp_instr i

(** [pp_code ?base ppf code] disassembles a code buffer, one instruction
    per line, with addresses starting at [base]. *)
let pp_code ?(base = 0) ppf (code : Bytes.t) =
  let instrs = Encode.disassemble code in
  List.iteri
    (fun idx i ->
      Format.fprintf ppf "%08x:  %a@." (base + (idx * Isa.width)) pp_instr i)
    instrs

let code_to_string ?base (code : Bytes.t) : string =
  Format.asprintf "%a" (pp_code ?base) code
