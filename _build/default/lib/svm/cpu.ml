(** The SVM processor: a fetch-decode-execute interpreter.

    The CPU is parameterized over a {!mem} record so the same core runs
    against a flat test memory or against [simos] page tables (where
    loads can fault, get charged to the simulated clock, and share
    physical frames between processes). *)

exception Trap of string

(** Memory interface supplied by the environment. Addresses are
    non-negative ints (32-bit address space). Implementations may raise
    {!Trap} on unmapped accesses. [fetch] returns the decoded
    instruction at an address; environments typically back it with a
    per-page decode cache. *)
type mem = {
  load8 : int -> int;
  store8 : int -> int -> unit;
  load32 : int -> int32;
  store32 : int -> int32 -> unit;
  fetch : int -> Isa.instr;
}

(** [flat_mem size] is a simple linear memory for tests and standalone
    program runs. *)
let flat_mem (size : int) : mem * Bytes.t =
  let buf = Bytes.make size '\000' in
  let check addr n =
    if addr < 0 || addr + n > size then
      raise (Trap (Printf.sprintf "memory access out of range: 0x%x" addr))
  in
  let mem =
    {
      load8 = (fun a -> check a 1; Bytes.get_uint8 buf a);
      store8 = (fun a v -> check a 1; Bytes.set_uint8 buf a (v land 0xff));
      load32 = (fun a -> check a 4; Bytes.get_int32_le buf a);
      store32 = (fun a v -> check a 4; Bytes.set_int32_le buf a v);
      fetch =
        (fun a ->
          check a Isa.width;
          Encode.decode_at buf a);
    }
  in
  (mem, buf)

(** Result of a syscall as decided by the environment. *)
type sys_result = Sys_continue | Sys_exit of int

type outcome = Running | Halted | Exited of int

type t = {
  regs : int32 array;
  mutable pc : int;
  mutable instr_count : int;
  mutable outcome : outcome;
  mem : mem;
  sys : t -> int -> sys_result;
}

let create ?(sys = fun _ _ -> Sys_continue) (mem : mem) : t =
  {
    regs = Array.make Isa.nregs 0l;
    pc = 0;
    instr_count = 0;
    outcome = Running;
    mem;
    sys;
  }

let get_reg (cpu : t) (r : int) : int32 = cpu.regs.(r)
let set_reg (cpu : t) (r : int) (v : int32) : unit = cpu.regs.(r) <- v

(** Interpret an int32 register value as an unsigned 32-bit address. *)
let addr_of (v : int32) : int = Int32.to_int v land 0xFFFFFFFF

let bool32 b = if b then 1l else 0l

(** Execute one instruction. No-op once the CPU has halted or exited. *)
let step (cpu : t) : unit =
  match cpu.outcome with
  | Halted | Exited _ -> ()
  | Running -> (
      let i = cpu.mem.fetch cpu.pc in
      let next = cpu.pc + Isa.width in
      cpu.instr_count <- cpu.instr_count + 1;
      let r = cpu.regs in
      let binop rd a b f = r.(rd) <- f r.(a) r.(b) in
      let nonzero_div rd a b f =
        if r.(b) = 0l then raise (Trap "division by zero")
        else r.(rd) <- f r.(a) r.(b)
      in
      cpu.pc <- next;
      match i with
      | Isa.Halt -> cpu.outcome <- Halted
      | Isa.Nop -> ()
      | Isa.Movi (rd, imm) | Isa.Lea (rd, imm) -> r.(rd) <- imm
      | Isa.Mov (rd, rs1) -> r.(rd) <- r.(rs1)
      | Isa.Add (rd, a, b) -> binop rd a b Int32.add
      | Isa.Sub (rd, a, b) -> binop rd a b Int32.sub
      | Isa.Mul (rd, a, b) -> binop rd a b Int32.mul
      | Isa.Div (rd, a, b) -> nonzero_div rd a b Int32.div
      | Isa.Mod (rd, a, b) -> nonzero_div rd a b Int32.rem
      | Isa.And_ (rd, a, b) -> binop rd a b Int32.logand
      | Isa.Or_ (rd, a, b) -> binop rd a b Int32.logor
      | Isa.Xor (rd, a, b) -> binop rd a b Int32.logxor
      | Isa.Shl (rd, a, b) ->
          r.(rd) <- Int32.shift_left r.(a) (Int32.to_int r.(b) land 31)
      | Isa.Shr (rd, a, b) ->
          r.(rd) <- Int32.shift_right_logical r.(a) (Int32.to_int r.(b) land 31)
      | Isa.Addi (rd, a, imm) -> r.(rd) <- Int32.add r.(a) imm
      | Isa.Cmpeq (rd, a, b) -> r.(rd) <- bool32 (r.(a) = r.(b))
      | Isa.Cmplt (rd, a, b) -> r.(rd) <- bool32 (Int32.compare r.(a) r.(b) < 0)
      | Isa.Cmple (rd, a, b) -> r.(rd) <- bool32 (Int32.compare r.(a) r.(b) <= 0)
      | Isa.Ld (rd, a, imm) ->
          r.(rd) <- cpu.mem.load32 (addr_of (Int32.add r.(a) imm))
      | Isa.St (a, s, imm) ->
          cpu.mem.store32 (addr_of (Int32.add r.(a) imm)) r.(s)
      | Isa.Ldb (rd, a, imm) ->
          r.(rd) <- Int32.of_int (cpu.mem.load8 (addr_of (Int32.add r.(a) imm)))
      | Isa.Stb (a, s, imm) ->
          cpu.mem.store8 (addr_of (Int32.add r.(a) imm)) (Int32.to_int r.(s) land 0xff)
      | Isa.Jmp imm -> cpu.pc <- addr_of imm
      | Isa.Br imm -> cpu.pc <- next + Int32.to_int imm
      | Isa.Jz (a, imm) -> if r.(a) = 0l then cpu.pc <- next + Int32.to_int imm
      | Isa.Jnz (a, imm) -> if r.(a) <> 0l then cpu.pc <- next + Int32.to_int imm
      | Isa.Call imm ->
          r.(Isa.reg_ra) <- Int32.of_int next;
          cpu.pc <- addr_of imm
      | Isa.Callr a ->
          let target = addr_of r.(a) in
          r.(Isa.reg_ra) <- Int32.of_int next;
          cpu.pc <- target
      | Isa.Jmpr a -> cpu.pc <- addr_of r.(a)
      | Isa.Ret -> cpu.pc <- addr_of r.(Isa.reg_ra)
      | Isa.Sys imm -> (
          match cpu.sys cpu (Int32.to_int imm) with
          | Sys_continue -> ()
          | Sys_exit code -> cpu.outcome <- Exited code))

(** [run ~fuel cpu] steps until the CPU halts, exits, or [fuel]
    instructions have executed. Returns the final outcome ([Running]
    means the fuel ran out). *)
let run ?(fuel = max_int) (cpu : t) : outcome =
  let rec go budget =
    match cpu.outcome with
    | Running when budget > 0 ->
        step cpu;
        go (budget - 1)
    | o -> o
  in
  go fuel

(** Convenience accessors for the simulated C-like ABI. *)

(** Read a NUL-terminated string from memory at [addr]. *)
let read_cstring (cpu : t) (addr : int) : string =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = cpu.mem.load8 a in
    if c = 0 then Buffer.contents buf
    else (
      Buffer.add_char buf (Char.chr c);
      go (a + 1))
  in
  go addr

(** Read [len] raw bytes from memory starting at [addr]. *)
let read_bytes (cpu : t) (addr : int) (len : int) : Bytes.t =
  Bytes.init len (fun i -> Char.chr (cpu.mem.load8 (addr + i)))

(** Write raw bytes into memory starting at [addr]. *)
let write_bytes (cpu : t) (addr : int) (b : Bytes.t) : unit =
  Bytes.iteri (fun i c -> cpu.mem.store8 (addr + i) (Char.code c)) b
