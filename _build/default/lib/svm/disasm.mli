(** Pretty-printing of SVM instructions and code sections, used by the
    OFE tool and by error messages. *)

val reg_name : int -> string
val pp_instr : Format.formatter -> Isa.instr -> unit
val instr_to_string : Isa.instr -> string
val pp_code : ?base:int -> Format.formatter -> Bytes.t -> unit
val code_to_string : ?base:int -> Bytes.t -> string
