lib/svm/isa.ml:
