lib/svm/cpu.ml: Array Buffer Bytes Char Encode Int32 Isa Printf
