lib/svm/disasm.ml: Bytes Encode Format Isa List Printf
