lib/svm/disasm.mli: Bytes Format Isa
