lib/svm/encode.ml: Bytes Isa List Printf
