lib/svm/isa.mli:
