lib/svm/cpu.mli: Bytes Isa
