lib/svm/encode.mli: Bytes Isa
