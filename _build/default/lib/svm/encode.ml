(** Binary encoding and decoding of SVM instructions. *)

exception Bad_instruction of string

let check_reg r =
  if r < 0 || r >= Isa.nregs then
    raise (Bad_instruction (Printf.sprintf "bad register r%d" r))

(* Split an instruction into its four encoded fields. *)
let fields (i : Isa.instr) : int * int * int * int32 =
  match i with
  | Halt | Nop | Ret -> (0, 0, 0, 0l)
  | Movi (rd, imm) | Lea (rd, imm) -> (rd, 0, 0, imm)
  | Mov (rd, rs1) -> (rd, rs1, 0, 0l)
  | Add (rd, rs1, rs2)
  | Sub (rd, rs1, rs2)
  | Mul (rd, rs1, rs2)
  | Div (rd, rs1, rs2)
  | Mod (rd, rs1, rs2)
  | And_ (rd, rs1, rs2)
  | Or_ (rd, rs1, rs2)
  | Xor (rd, rs1, rs2)
  | Shl (rd, rs1, rs2)
  | Shr (rd, rs1, rs2)
  | Cmpeq (rd, rs1, rs2)
  | Cmplt (rd, rs1, rs2)
  | Cmple (rd, rs1, rs2) -> (rd, rs1, rs2, 0l)
  | Addi (rd, rs1, imm) -> (rd, rs1, 0, imm)
  | Ld (rd, rs1, imm) | Ldb (rd, rs1, imm) -> (rd, rs1, 0, imm)
  | St (rs1, rs2, imm) | Stb (rs1, rs2, imm) -> (0, rs1, rs2, imm)
  | Jmp imm | Call imm | Sys imm | Br imm -> (0, 0, 0, imm)
  | Jz (rs1, imm) | Jnz (rs1, imm) -> (0, rs1, 0, imm)
  | Callr rs1 | Jmpr rs1 -> (0, rs1, 0, 0l)

(** [encode_at buf off i] writes the 8-byte encoding of [i] into [buf]
    at offset [off]. *)
let encode_at (buf : Bytes.t) (off : int) (i : Isa.instr) : unit =
  let rd, rs1, rs2, imm = fields i in
  check_reg rd;
  check_reg rs1;
  check_reg rs2;
  Bytes.set_uint8 buf off (Isa.opcode i);
  Bytes.set_uint8 buf (off + 1) rd;
  Bytes.set_uint8 buf (off + 2) rs1;
  Bytes.set_uint8 buf (off + 3) rs2;
  Bytes.set_int32_le buf (off + Isa.imm_offset) imm

(** [encode i] returns the 8-byte encoding of [i]. *)
let encode (i : Isa.instr) : Bytes.t =
  let buf = Bytes.create Isa.width in
  encode_at buf 0 i;
  buf

(** [decode_fields op rd rs1 rs2 imm] rebuilds the instruction from its
    raw fields. Raises {!Bad_instruction} on an unknown opcode. *)
let decode_fields op rd rs1 rs2 (imm : int32) : Isa.instr =
  match op with
  | 0 -> Halt
  | 1 -> Nop
  | 2 -> Movi (rd, imm)
  | 3 -> Mov (rd, rs1)
  | 4 -> Add (rd, rs1, rs2)
  | 5 -> Sub (rd, rs1, rs2)
  | 6 -> Mul (rd, rs1, rs2)
  | 7 -> Div (rd, rs1, rs2)
  | 8 -> Mod (rd, rs1, rs2)
  | 9 -> And_ (rd, rs1, rs2)
  | 10 -> Or_ (rd, rs1, rs2)
  | 11 -> Xor (rd, rs1, rs2)
  | 12 -> Shl (rd, rs1, rs2)
  | 13 -> Shr (rd, rs1, rs2)
  | 14 -> Addi (rd, rs1, imm)
  | 15 -> Cmpeq (rd, rs1, rs2)
  | 16 -> Cmplt (rd, rs1, rs2)
  | 17 -> Cmple (rd, rs1, rs2)
  | 18 -> Ld (rd, rs1, imm)
  | 19 -> St (rs1, rs2, imm)
  | 20 -> Ldb (rd, rs1, imm)
  | 21 -> Stb (rs1, rs2, imm)
  | 22 -> Lea (rd, imm)
  | 23 -> Jmp imm
  | 24 -> Jz (rs1, imm)
  | 25 -> Jnz (rs1, imm)
  | 26 -> Call imm
  | 27 -> Callr rs1
  | 28 -> Jmpr rs1
  | 29 -> Ret
  | 30 -> Sys imm
  | 31 -> Br imm
  | n -> raise (Bad_instruction (Printf.sprintf "bad opcode %d" n))

(** [decode_at buf off] decodes the instruction stored at [off]. *)
let decode_at (buf : Bytes.t) (off : int) : Isa.instr =
  if off + Isa.width > Bytes.length buf then
    raise (Bad_instruction "truncated instruction");
  let op = Bytes.get_uint8 buf off in
  let rd = Bytes.get_uint8 buf (off + 1) in
  let rs1 = Bytes.get_uint8 buf (off + 2) in
  let rs2 = Bytes.get_uint8 buf (off + 3) in
  let imm = Bytes.get_int32_le buf (off + Isa.imm_offset) in
  decode_fields op rd rs1 rs2 imm

let decode (buf : Bytes.t) : Isa.instr = decode_at buf 0

(** [assemble instrs] encodes a whole instruction sequence. *)
let assemble (instrs : Isa.instr list) : Bytes.t =
  let buf = Bytes.create (List.length instrs * Isa.width) in
  List.iteri (fun idx i -> encode_at buf (idx * Isa.width) i) instrs;
  buf

(** [disassemble buf] decodes a code section back into instructions.
    The buffer length must be a multiple of {!Isa.width}. *)
let disassemble (buf : Bytes.t) : Isa.instr list =
  let n = Bytes.length buf in
  if n mod Isa.width <> 0 then
    raise (Bad_instruction "code size not a multiple of instruction width");
  let rec go off acc =
    if off >= n then List.rev acc else go (off + Isa.width) (decode_at buf off :: acc)
  in
  go 0 []
