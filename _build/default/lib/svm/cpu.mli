(** The SVM processor: a fetch-decode-execute interpreter.

    The CPU is parameterized over a {!mem} record so the same core runs
    against a flat test memory or against [simos] page tables (where
    loads can fault, get charged to the simulated clock, and share
    physical frames between processes). *)

exception Trap of string

(** Memory interface supplied by the environment. Addresses are
    non-negative ints (32-bit address space). Implementations may raise
    {!Trap} on unmapped accesses. [fetch] returns the decoded
    instruction at an address; environments typically back it with a
    per-page decode cache. *)
type mem = {
  load8 : int -> int;
  store8 : int -> int -> unit;
  load32 : int -> int32;
  store32 : int -> int32 -> unit;
  fetch : int -> Isa.instr;
}

(** [flat_mem size] is a simple linear memory for tests and standalone
    program runs; also returns its backing buffer. *)
val flat_mem : int -> mem * Bytes.t

(** Result of a syscall as decided by the environment. *)
type sys_result = Sys_continue | Sys_exit of int

type outcome = Running | Halted | Exited of int

type t = {
  regs : int32 array;
  mutable pc : int;
  mutable instr_count : int;
  mutable outcome : outcome;
  mem : mem;
  sys : t -> int -> sys_result;
}

val create : ?sys:(t -> int -> sys_result) -> mem -> t
val get_reg : t -> int -> int32
val set_reg : t -> int -> int32 -> unit

(** Interpret an int32 register value as an unsigned 32-bit address. *)
val addr_of : int32 -> int

(** Execute one instruction. No-op once the CPU has halted or exited.
    @raise Trap on division by zero or a memory fault. *)
val step : t -> unit

(** [run ~fuel cpu] steps until the CPU halts, exits, or [fuel]
    instructions have executed ([Running] means the fuel ran out). *)
val run : ?fuel:int -> t -> outcome

(** Read a NUL-terminated string from memory at an address. *)
val read_cstring : t -> int -> string

(** Read raw bytes from memory. *)
val read_bytes : t -> int -> int -> Bytes.t

(** Write raw bytes into memory. *)
val write_bytes : t -> int -> Bytes.t -> unit
