(** Instruction set of SVM, the simulated 32-bit machine.

    SVM stands in for the PA-RISC / i386 processors of the paper. It is a
    small RISC-like machine chosen so that linking is meaningful: code
    references data and other code through 32-bit absolute immediates
    (patched by [Abs32] relocations) and through pc-relative branch
    displacements (patched by [Pcrel32] relocations).

    Every instruction occupies {!width} bytes:
    byte 0 = opcode, byte 1 = rd, byte 2 = rs1, byte 3 = rs2,
    bytes 4..7 = 32-bit little-endian immediate. *)

(** Number of general-purpose registers. *)
let nregs = 16

(** Register conventions. *)
let reg_ret = 0 (* return value *)

let reg_acc = 1 (* primary scratch / expression accumulator *)
let reg_tmp = 2 (* secondary scratch *)
let reg_arg0 = 1 (* syscall arguments live in r1..r4 *)

let reg_fp = 13
let reg_sp = 14
let reg_ra = 15

(** Instruction width in bytes. *)
let width = 8

type reg = int

(** The instruction set. [imm] fields are signed 32-bit values. Absolute
    control transfers ([Jmp], [Call], [Lea]) are the relocation targets;
    conditional branches are pc-relative (offset from the {e following}
    instruction). *)
type instr =
  | Halt
  | Nop
  | Movi of reg * int32 (* rd := imm *)
  | Mov of reg * reg (* rd := rs1 *)
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Mod of reg * reg * reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Addi of reg * reg * int32 (* rd := rs1 + imm *)
  | Cmpeq of reg * reg * reg (* rd := rs1 = rs2 *)
  | Cmplt of reg * reg * reg (* rd := rs1 < rs2 (signed) *)
  | Cmple of reg * reg * reg
  | Ld of reg * reg * int32 (* rd := mem32[rs1 + imm] *)
  | St of reg * reg * int32 (* mem32[rs1 + imm] := rs2  (rd unused) *)
  | Ldb of reg * reg * int32 (* rd := mem8[rs1 + imm] *)
  | Stb of reg * reg * int32 (* mem8[rs1 + imm] := rs2 *)
  | Lea of reg * int32 (* rd := imm (address; Abs32 reloc site) *)
  | Jmp of int32 (* pc := imm (absolute; Abs32 reloc site) *)
  | Jz of reg * int32 (* if rs1 = 0 then pc := pc + 8 + imm *)
  | Jnz of reg * int32
  | Call of int32 (* ra := pc + 8; pc := imm (Abs32 reloc site) *)
  | Callr of reg (* ra := pc + 8; pc := rs1 *)
  | Jmpr of reg (* pc := rs1 *)
  | Ret (* pc := ra *)
  | Sys of int32 (* invoke syscall #imm; args r1..r4, result r0 *)
  | Br of int32 (* pc := pc + 8 + imm (unconditional, pc-relative) *)

let opcode = function
  | Halt -> 0
  | Nop -> 1
  | Movi _ -> 2
  | Mov _ -> 3
  | Add _ -> 4
  | Sub _ -> 5
  | Mul _ -> 6
  | Div _ -> 7
  | Mod _ -> 8
  | And_ _ -> 9
  | Or_ _ -> 10
  | Xor _ -> 11
  | Shl _ -> 12
  | Shr _ -> 13
  | Addi _ -> 14
  | Cmpeq _ -> 15
  | Cmplt _ -> 16
  | Cmple _ -> 17
  | Ld _ -> 18
  | St _ -> 19
  | Ldb _ -> 20
  | Stb _ -> 21
  | Lea _ -> 22
  | Jmp _ -> 23
  | Jz _ -> 24
  | Jnz _ -> 25
  | Call _ -> 26
  | Callr _ -> 27
  | Jmpr _ -> 28
  | Ret -> 29
  | Sys _ -> 30
  | Br _ -> 31

let max_opcode = 31

(** Byte offset of the immediate field within an encoded instruction —
    the locus a relocation patches. *)
let imm_offset = 4

let mnemonic = function
  | Halt -> "halt"
  | Nop -> "nop"
  | Movi _ -> "movi"
  | Mov _ -> "mov"
  | Add _ -> "add"
  | Sub _ -> "sub"
  | Mul _ -> "mul"
  | Div _ -> "div"
  | Mod _ -> "mod"
  | And_ _ -> "and"
  | Or_ _ -> "or"
  | Xor _ -> "xor"
  | Shl _ -> "shl"
  | Shr _ -> "shr"
  | Addi _ -> "addi"
  | Cmpeq _ -> "cmpeq"
  | Cmplt _ -> "cmplt"
  | Cmple _ -> "cmple"
  | Ld _ -> "ld"
  | St _ -> "st"
  | Ldb _ -> "ldb"
  | Stb _ -> "stb"
  | Lea _ -> "lea"
  | Jmp _ -> "jmp"
  | Jz _ -> "jz"
  | Jnz _ -> "jnz"
  | Call _ -> "call"
  | Callr _ -> "callr"
  | Jmpr _ -> "jmpr"
  | Ret -> "ret"
  | Sys _ -> "sys"
  | Br _ -> "br"
