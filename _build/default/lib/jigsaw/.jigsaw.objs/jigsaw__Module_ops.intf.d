lib/jigsaw/module_ops.mli: Select Sof
