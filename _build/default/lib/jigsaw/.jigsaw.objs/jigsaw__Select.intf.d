lib/jigsaw/select.mli:
