lib/jigsaw/module_ops.ml: Format Hashtbl Linker List Option Printf Select Sof Str Svm
