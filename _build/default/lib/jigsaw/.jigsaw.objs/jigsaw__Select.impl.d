lib/jigsaw/select.ml: Str
