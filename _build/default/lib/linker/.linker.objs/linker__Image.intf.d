lib/linker/image.mli: Bytes Format
