lib/linker/image.ml: Buffer Bytes Digest Format Int32 List Printf String
