lib/linker/link.mli: Image Sof
