lib/linker/link.ml: Bytes Hashtbl Image Int32 List Printexc Printf Sof String Svm
