lib/linker/archive.mli: Sof
