lib/linker/archive.ml: Hashtbl List Queue Sof
