(** Archive-member selection: classic Unix static-linking semantics — a
    static link pulls only the library members that satisfy undefined
    references, transitively. *)

(** [select ~roots ~available] returns the members of [available]
    needed by [roots], transitively, preserving [available]'s order. *)
val select :
  roots:Sof.Object_file.t list ->
  available:Sof.Object_file.t list ->
  Sof.Object_file.t list
