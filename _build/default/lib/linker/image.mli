(** Executable images: the "mappable result" of evaluating an m-graph.

    An image is a set of positioned segments plus an entry point and an
    exported symbol table. Images are what OMOS caches and maps into
    client address spaces; their read-only segments are the unit of
    physical sharing between processes. *)

type segment = {
  seg_name : string; (* "text" / "data" *)
  vaddr : int;
  bytes : Bytes.t;
  writable : bool;
}

type t = {
  name : string;
  segments : segment list;
  bss_vaddr : int;
  bss_size : int;
  entry : int;  (** absolute address of the entry symbol; -1 if none *)
  symtab : (string * int) list;  (** exported name → absolute address *)
  reloc_work : int;  (** relocations applied while building *)
}

val find_symbol : t -> string -> int option

(** Total bytes of initialized segments. *)
val loaded_size : t -> int

val text_segment : t -> segment option
val data_segment : t -> segment option

(** Address range [lo, hi) spanned by the image (segments + bss). *)
val extent : t -> int * int

(** Content digest, stable across builds of identical images. Placement
    is part of the identity: the same library at a different base is a
    different image. *)
val digest : t -> string

(** Copy all segments into a flat memory buffer at their virtual
    addresses and zero the bss — the single-process loading path used
    by tests and examples without the full simulated OS. *)
val load_into_flat : t -> Bytes.t -> unit

(** Serialize to bytes — the on-"disk" executable format the
    traditional exec path reads and parses. *)
val encode : t -> Bytes.t

exception Decode_error of string

(** Parse bytes produced by {!encode}. @raise Decode_error. *)
val decode : Bytes.t -> t

val pp : Format.formatter -> t -> unit
