(** The link engine: layout, symbol resolution, relocation.

    {!link} performs a {e full} link of an ordered fragment list into a
    positioned, fully relocated {!Image.t}; {!combine} performs a
    {e partial} link, concatenating fragments into one relocatable
    object with all references kept symbolic. *)

type error =
  | Duplicate of string * string * string
      (** symbol, first defining fragment, second fragment *)
  | Undefined of string list
  | Layout_overlap of string

exception Link_error of error

val error_to_string : error -> string

(** Where the linked image goes: base virtual addresses of the text and
    data segments (bss follows data). *)
type layout = { text_base : int; data_base : int }

(** Link statistics — the quantities the paper's cost argument is
    about. *)
type stats = {
  fragments : int;
  relocs_applied : int;
  symbols_resolved : int;
  undefined : string list; (** non-empty only with [~allow_undefined] *)
}

(** [link ~layout frags] fully links [frags].

    [entry] names the entry-point symbol (default ["_start"], falling
    back to ["main"]). [externals] are already-positioned images whose
    exported symbols satisfy remaining references — how a client binds
    to a self-contained shared library's fixed addresses. With
    [allow_undefined], unresolved references are left as zero words and
    reported in [stats] instead of raising.

    Resolution order for each fragment's references: the fragment's own
    definitions (including locals), then exported definitions across
    all fragments, then [externals].

    @raise Link_error on duplicate globals, unresolved references
    (unless allowed), or overlapping segment layout. *)
val link :
  ?entry:string ->
  ?externals:Image.t list ->
  ?allow_undefined:bool ->
  layout:layout ->
  Sof.Object_file.t list ->
  Image.t * stats

(** [combine ~name frags] partially links [frags] into one relocatable
    object. Sections are concatenated and symbol values rebased; all
    relocations stay symbolic. Local symbols are mangled per-fragment
    so same-named locals in different members cannot collide. *)
val combine : name:string -> Sof.Object_file.t list -> Sof.Object_file.t
