(** Executable images: the "mappable result" of evaluating an m-graph.

    An image is a set of positioned segments plus an entry point and an
    exported symbol table. Images are what OMOS caches and maps into
    client address spaces; their read-only segments are the unit of
    physical sharing between processes. *)

type segment = {
  seg_name : string; (* "text" / "data" *)
  vaddr : int;
  bytes : Bytes.t;
  writable : bool;
}

type t = {
  name : string;
  segments : segment list;
  bss_vaddr : int;
  bss_size : int;
  entry : int; (* absolute address of the entry symbol; -1 if none *)
  symtab : (string * int) list; (* exported name -> absolute address *)
  reloc_work : int; (* relocations applied while building — cost input *)
}

let find_symbol (img : t) (name : string) : int option =
  List.assoc_opt name img.symtab

(** Total bytes of initialized segments. *)
let loaded_size (img : t) : int =
  List.fold_left (fun acc s -> acc + Bytes.length s.bytes) 0 img.segments

let text_segment (img : t) : segment option =
  List.find_opt (fun s -> not s.writable) img.segments

let data_segment (img : t) : segment option =
  List.find_opt (fun s -> s.writable) img.segments

(** Address range [lo, hi) spanned by the image (segments + bss). *)
let extent (img : t) : int * int =
  let lo, hi =
    List.fold_left
      (fun (lo, hi) s ->
        (min lo s.vaddr, max hi (s.vaddr + Bytes.length s.bytes)))
      (max_int, 0) img.segments
  in
  let hi = if img.bss_size > 0 then max hi (img.bss_vaddr + img.bss_size) else hi in
  let lo = if lo = max_int then 0 else lo in
  (lo, hi)

(** Content digest, stable across builds of identical images. Segment
    placement is part of the identity: the same library placed at a
    different base is a different image. *)
let digest (img : t) : string =
  let buf = Buffer.create (loaded_size img + 64) in
  Buffer.add_string buf img.name;
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "|%s@%x:%b:" s.seg_name s.vaddr s.writable);
      Buffer.add_bytes buf s.bytes)
    img.segments;
  Buffer.add_string buf (Printf.sprintf "|bss@%x+%x|e%x" img.bss_vaddr img.bss_size img.entry);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** [load_into_flat img mem] copies all segments into a flat memory
    buffer at their virtual addresses and zeroes the bss — the
    single-process loading path used by tests and examples that run
    without the full simulated OS. *)
let load_into_flat (img : t) (mem : Bytes.t) : unit =
  List.iter
    (fun s -> Bytes.blit s.bytes 0 mem s.vaddr (Bytes.length s.bytes))
    img.segments;
  if img.bss_size > 0 then Bytes.fill mem img.bss_vaddr img.bss_size '\000'

(** Serialize an image to bytes — the on-"disk" executable format the
    traditional exec path reads and parses. *)
let encode (img : t) : Bytes.t =
  let buf = Buffer.create (loaded_size img + 256) in
  Buffer.add_string buf "SIMG";
  let put_u32 v = Buffer.add_int32_le buf (Int32.of_int v) in
  let put_str s = put_u32 (String.length s); Buffer.add_string buf s in
  put_str img.name;
  put_u32 (List.length img.segments);
  List.iter
    (fun s ->
      put_str s.seg_name;
      put_u32 s.vaddr;
      put_u32 (if s.writable then 1 else 0);
      put_u32 (Bytes.length s.bytes);
      Buffer.add_bytes buf s.bytes)
    img.segments;
  put_u32 img.bss_vaddr;
  put_u32 img.bss_size;
  put_u32 (img.entry land 0xFFFFFFFF);
  put_u32 (List.length img.symtab);
  List.iter (fun (n, a) -> put_str n; put_u32 a) img.symtab;
  put_u32 img.reloc_work;
  Buffer.to_bytes buf

exception Decode_error of string

let decode (b : Bytes.t) : t =
  let pos = ref 0 in
  let need n =
    if !pos + n > Bytes.length b then raise (Decode_error "truncated image")
  in
  let get_u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le b !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let get_str () =
    let n = get_u32 () in
    need n;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  need 4;
  if Bytes.sub_string b 0 4 <> "SIMG" then raise (Decode_error "bad image magic");
  pos := 4;
  let name = get_str () in
  let nsegs = get_u32 () in
  let segments =
    List.init nsegs (fun _ -> ())
    |> List.map (fun () ->
           let seg_name = get_str () in
           let vaddr = get_u32 () in
           let writable = get_u32 () = 1 in
           let len = get_u32 () in
           need len;
           let bytes = Bytes.sub b !pos len in
           pos := !pos + len;
           { seg_name; vaddr; bytes; writable })
  in
  let bss_vaddr = get_u32 () in
  let bss_size = get_u32 () in
  let entry =
    let e = get_u32 () in
    if e = 0xFFFFFFFF then -1 else e
  in
  let nsyms = get_u32 () in
  let symtab =
    List.init nsyms (fun _ -> ())
    |> List.map (fun () ->
           let n = get_str () in
           let a = get_u32 () in
           (n, a))
  in
  let reloc_work = get_u32 () in
  { name; segments; bss_vaddr; bss_size; entry; symtab; reloc_work }

let pp ppf (img : t) =
  Format.fprintf ppf "@[<v>image %s entry=0x%x reloc_work=%d@," img.name img.entry
    img.reloc_work;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-5s 0x%08x +%d %s@," s.seg_name s.vaddr
        (Bytes.length s.bytes)
        (if s.writable then "rw" else "ro"))
    img.segments;
  if img.bss_size > 0 then
    Format.fprintf ppf "  bss   0x%08x +%d@," img.bss_vaddr img.bss_size;
  Format.fprintf ppf "@]"
