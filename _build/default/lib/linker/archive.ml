(** Archive-member selection: classic Unix static-linking semantics.

    A traditional static link against libc.a does not absorb the whole
    library — the linker pulls only the members that satisfy undefined
    references, transitively. The static baseline scheme uses this so
    its binaries (and their write-out cost, and the memory comparison
    of experiment E2) are realistic. *)

(** [select ~roots ~available] returns the members of [available]
    needed to satisfy the undefined references of [roots], transitively,
    in a deterministic order (first-use order over [available]). *)
let select ~(roots : Sof.Object_file.t list) ~(available : Sof.Object_file.t list) :
    Sof.Object_file.t list =
  (* map: exported name -> providing member *)
  let providers = Hashtbl.create 64 in
  List.iter
    (fun (o : Sof.Object_file.t) ->
      List.iter
        (fun (s : Sof.Symbol.t) ->
          if not (Hashtbl.mem providers s.Sof.Symbol.name) then
            Hashtbl.replace providers s.Sof.Symbol.name o)
        (Sof.Object_file.exported o))
    available;
  let picked = Hashtbl.create 16 in
  let picked_order = ref [] in
  let defined = Hashtbl.create 64 in
  let note_defs (o : Sof.Object_file.t) =
    List.iter
      (fun (s : Sof.Symbol.t) -> Hashtbl.replace defined s.Sof.Symbol.name ())
      (Sof.Object_file.exported o)
  in
  List.iter note_defs roots;
  let queue = Queue.create () in
  List.iter (fun o -> Queue.add o queue) roots;
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    List.iter
      (fun name ->
        if not (Hashtbl.mem defined name) then
          match Hashtbl.find_opt providers name with
          | Some m when not (Hashtbl.mem picked m.Sof.Object_file.name) ->
              Hashtbl.replace picked m.Sof.Object_file.name ();
              picked_order := m :: !picked_order;
              note_defs m;
              Queue.add m queue
          | Some _ | None -> ())
      (Sof.Object_file.undefined o)
  done;
  (* keep [available]'s order for determinism *)
  List.filter (fun (o : Sof.Object_file.t) -> Hashtbl.mem picked o.Sof.Object_file.name)
    available
