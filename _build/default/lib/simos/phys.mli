(** Physical-memory accounting.

    The unit of sharing in OMOS is the read-only segment of a cached
    image: every client that maps it references the same physical
    frames. This module tracks frame groups and reference counts so
    benchmarks can report real memory use; region contents stay in
    their backing [Bytes.t]. *)

type frame_group = {
  id : int;
  label : string;
  pages : int;
  mutable refs : int;  (** how many mappings share this group *)
}

type t

val create : ?page_size:int -> unit -> t

(** Allocate a group of frames backing [bytes] bytes (refcount 1). *)
val alloc : t -> label:string -> bytes:int -> frame_group

(** Share an existing group (another process maps the same segment). *)
val addref : frame_group -> unit

(** Drop one reference; the group is freed at zero. *)
val decref : t -> frame_group -> unit

(** Physical pages actually allocated. *)
val resident_pages : t -> int

(** Pages summed over every mapping — the no-sharing counterfactual. *)
val mapped_pages : t -> int

(** Pages saved by sharing. *)
val saved_pages : t -> int

val pp : Format.formatter -> t -> unit
