(** Per-process virtual address spaces with demand paging.

    A space is a set of non-overlapping regions. Read-only regions can
    be {e shared}: their backing bytes and physical frames belong to a
    cached image and are referenced, not copied. Writable regions are
    private copies. Every region is demand-paged: the first touch of
    each page charges a soft fault (resident backing) or a disk read
    (first-ever load of a segment still "on disk"), plus an optional
    per-page user cost (deferred-relocation modelling). *)

exception Fault of string

(** Residency of a segment's source, page by page, SHARED by every
    process mapping the segment: the first process to touch a page pays
    the disk read. An empty array means "always resident". *)
type backing_state = { resident : bool array }

type region = {
  lo : int;
  hi : int; (* exclusive *)
  bytes : Bytes.t;
  writable : bool;
  shared : bool;
  label : string;
  touched : bool array; (* per-page demand accounting *)
  backing : backing_state;
  frames : Phys.frame_group;
  decode : Svm.Isa.instr option array; (* instruction cache *)
  touch_user_cost : float;
}

type t

val create : phys:Phys.t -> clock:Clock.t -> cost:Cost.t -> unit -> t

val regions : t -> region list

(** Backing that must be demand-loaded from disk, for a segment of
    [bytes] bytes. *)
val disk_backing : bytes:int -> backing_state

(** Map a read-only shared segment: backing bytes and frames are
    referenced, not copied. *)
val map_shared :
  t ->
  vaddr:int ->
  bytes:Bytes.t ->
  frames:Phys.frame_group ->
  backing:backing_state ->
  ?touch_user_cost:float ->
  label:string ->
  unit ->
  unit

(** Map a private writable region, initialized from [init]
    (zero-filled beyond it). *)
val map_private :
  t ->
  vaddr:int ->
  ?init:Bytes.t ->
  ?backing:backing_state ->
  ?touch_user_cost:float ->
  size:int ->
  label:string ->
  unit ->
  unit

(** Release all mappings (process teardown). *)
val destroy : t -> unit

(** Remove the region starting at [lo] (dynamic unlinking).
    @raise Fault if no region starts there. *)
val unmap : t -> lo:int -> unit

(** Pages touched in regions whose label satisfies [pred] — the
    working-set measure used by the reordering experiment. *)
val touched_pages : t -> ?pred:(string -> bool) -> unit -> int

(** (soft faults, disk faults) so far. *)
val fault_stats : t -> int * int

(** Raw accessors (each may fault and charges demand-paging costs). *)

val load8 : t -> int -> int
val store8 : t -> int -> int -> unit
val load32 : t -> int -> int32
val store32 : t -> int -> int32 -> unit
val fetch : t -> int -> Svm.Isa.instr

(** CPU memory interface for this address space. *)
val mem : t -> Svm.Cpu.mem
