(** Simulated processes: an address space, a CPU, file descriptors,
    arguments, and captured stdout. *)

type fd =
  | Fd_file of { path : string; data : Bytes.t; mutable pos : int }
  | Fd_dir of { path : string; entries : string array }

type t = {
  pid : int;
  aspace : Addr_space.t;
  mutable cpu : Svm.Cpu.t option; (* installed at exec time *)
  args : string list; (* argv, argv[0] = program name *)
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  stdout : Buffer.t;
  mutable exit_code : int option;
}

let create ~(pid : int) ~(aspace : Addr_space.t) ~(args : string list) : t =
  {
    pid;
    aspace;
    cpu = None;
    args;
    fds = Hashtbl.create 8;
    next_fd = 3; (* 0,1,2 reserved *)
    stdout = Buffer.create 256;
    exit_code = None;
  }

let alloc_fd (p : t) (fd : fd) : int =
  let n = p.next_fd in
  p.next_fd <- n + 1;
  Hashtbl.replace p.fds n fd;
  n

let find_fd (p : t) (n : int) : fd option = Hashtbl.find_opt p.fds n
let close_fd (p : t) (n : int) : unit = Hashtbl.remove p.fds n

let stdout_contents (p : t) : string = Buffer.contents p.stdout

let cpu_exn (p : t) : Svm.Cpu.t =
  match p.cpu with Some c -> c | None -> invalid_arg "process has no CPU (not exec'd)"
