lib/simos/phys.ml: Cost Format List
