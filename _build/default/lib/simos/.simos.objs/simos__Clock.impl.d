lib/simos/clock.ml: Format
