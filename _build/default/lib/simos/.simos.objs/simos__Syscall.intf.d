lib/simos/syscall.mli:
