lib/simos/cost.ml:
