lib/simos/fs.mli: Bytes Hashtbl
