lib/simos/kernel.ml: Addr_space Array Buffer Bytes Clock Cost Fs Hashtbl Int32 Linker List Phys Proc String Svm Syscall
