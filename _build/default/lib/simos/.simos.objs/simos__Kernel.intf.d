lib/simos/kernel.mli: Addr_space Bytes Clock Cost Fs Hashtbl Linker Phys Proc Svm
