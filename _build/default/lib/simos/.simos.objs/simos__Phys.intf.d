lib/simos/phys.mli: Format
