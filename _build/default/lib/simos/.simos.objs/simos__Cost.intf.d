lib/simos/cost.mli:
