lib/simos/fs.ml: Bytes Hashtbl List String
