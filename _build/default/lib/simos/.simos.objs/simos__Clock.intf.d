lib/simos/clock.mli: Format
