lib/simos/proc.ml: Addr_space Buffer Bytes Hashtbl Svm
