lib/simos/proc.mli: Addr_space Buffer Bytes Hashtbl Svm
