lib/simos/syscall.ml:
