lib/simos/addr_space.mli: Bytes Clock Cost Phys Svm
