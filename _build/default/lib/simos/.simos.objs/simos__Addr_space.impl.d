lib/simos/addr_space.ml: Array Bytes Clock Cost List Phys Printf Svm
