(** The in-memory filesystem of the simulated OS: object files,
    meta-object sources, executables, and the data directories the
    workloads operate on. I/O costs are charged at the syscall layer,
    not here. *)

exception Fs_error of string

type node = File of Bytes.t | Dir of (string, node) Hashtbl.t

type t

val create : unit -> t
val lookup : t -> string -> node option
val exists : t -> string -> bool

(** Create all directories along a path. *)
val mkdir_p : t -> string -> unit

(** Write (or overwrite) a file, creating parent directories. *)
val write_file : t -> string -> Bytes.t -> unit

(** @raise Fs_error if absent or a directory. *)
val read_file : t -> string -> Bytes.t

val remove : t -> string -> unit

(** Directory entries, sorted (what readdir returns). *)
val list_dir : t -> string -> string list

(** File size, or directory entry count; [None] if absent. *)
val stat : t -> string -> [ `File of int | `Dir of int ] option

(** Total bytes stored under a path (disk-consumption accounting). *)
val disk_usage : t -> string -> int
