(** Physical-memory accounting.

    The unit of sharing in OMOS is the read-only segment of a cached
    image: every client that maps it references the same physical
    frames. This module tracks frames and reference counts so the
    benchmarks can report real memory use (the dispatch-table-vs-sharing
    experiment) without scattering actual bytes across frame objects —
    region contents stay in their backing [Bytes.t]. *)

type frame_group = {
  id : int;
  label : string;
  pages : int;
  mutable refs : int; (* how many mappings share this group *)
}

type t = {
  mutable groups : frame_group list;
  mutable next_id : int;
  page_size : int;
}

let create ?(page_size = Cost.page_size) () : t =
  { groups = []; next_id = 0; page_size }

let pages_for (t : t) (bytes : int) : int =
  (bytes + t.page_size - 1) / t.page_size

(** Allocate a group of frames backing [bytes] bytes. *)
let alloc (t : t) ~(label : string) ~(bytes : int) : frame_group =
  let g = { id = t.next_id; label; pages = max 1 (pages_for t bytes); refs = 1 } in
  t.next_id <- t.next_id + 1;
  t.groups <- g :: t.groups;
  g

(** Share an existing group (another process maps the same segment). *)
let addref (g : frame_group) : unit = g.refs <- g.refs + 1

(** Drop one reference; the group is freed when refs reach zero. *)
let decref (t : t) (g : frame_group) : unit =
  g.refs <- g.refs - 1;
  if g.refs <= 0 then t.groups <- List.filter (fun g' -> g'.id <> g.id) t.groups

(** Physical pages actually allocated. *)
let resident_pages (t : t) : int =
  List.fold_left (fun acc g -> acc + g.pages) 0 t.groups

(** Pages as they appear summed over every process's mappings — the
    no-sharing counterfactual. *)
let mapped_pages (t : t) : int =
  List.fold_left (fun acc g -> acc + (g.pages * g.refs)) 0 t.groups

(** Pages saved by sharing. *)
let saved_pages (t : t) : int = mapped_pages t - resident_pages t

let pp ppf (t : t) =
  Format.fprintf ppf "resident=%d mapped=%d saved=%d (pages)" (resident_pages t)
    (mapped_pages t) (saved_pages t)
