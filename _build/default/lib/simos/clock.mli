(** The simulated clock: accumulates user, system, and I/O time in
    microseconds, mirroring how the paper's tables split measurements
    (User / System / Elapsed). *)

type t = { mutable user : float; mutable system : float; mutable io : float }

type snapshot

val create : unit -> t
val charge_user : t -> float -> unit
val charge_system : t -> float -> unit
val charge_io : t -> float -> unit

(** Elapsed time: user + system + I/O waits. *)
val elapsed : t -> float

val snapshot : t -> snapshot

(** Time accumulated since a snapshot, as (user, system, elapsed). *)
val since : t -> snapshot -> float * float * float

val reset : t -> unit
val pp : Format.formatter -> t -> unit
