(** The kernel of the simulated OS: processes, syscalls, the
    traditional exec path, and the hooks OMOS plugs into.

    Address-space layout convention for executables: text/data wherever
    the linker put them; a 256 KB anonymous heap at {!heap_base}; a
    256 KB stack ending at {!stack_top}. *)

exception Exec_error of string

val heap_base : int
val heap_size : int
val stack_top : int
val stack_size : int

(** A file-backed shared segment in the OS page cache: every process
    mapping the same key shares its frames and backing residency. *)
type cached_seg = {
  cs_bytes : Bytes.t;
  cs_frames : Phys.frame_group;
  cs_backing : Addr_space.backing_state;
}

type t = {
  fs : Fs.t;
  phys : Phys.t;
  clock : Clock.t;
  cost : Cost.t;
  mutable procs : Proc.t list;
  mutable next_pid : int;
  page_cache : (string, cached_seg) Hashtbl.t; (* key: path#segment *)
  read_cached : (string, unit) Hashtbl.t; (* file data in the buffer cache *)
  mutable upcall : (t -> Proc.t -> Svm.Cpu.t -> int -> Svm.Cpu.sys_result) option;
  interpreters :
    (string, t -> params:string list -> args:string list -> Proc.t) Hashtbl.t;
  mutable syscall_count : int;
}

(** [create ()] builds a kernel with the given cost personality
    (default {!Cost.hpux}): empty filesystem, no processes. *)
val create : ?cost:Cost.t -> unit -> t

(** Install the handler for syscalls at or above {!Syscall.omos_base}
    (the OMOS server and scheme runtimes use this). *)
val set_upcall :
  t -> (t -> Proc.t -> Svm.Cpu.t -> int -> Svm.Cpu.sys_result) -> unit

(** Charge simulated time (microseconds) to the respective clock
    bucket. *)
val charge_sys : t -> float -> unit

val charge_io : t -> float -> unit
val charge_user : t -> float -> unit

(** Create a process with an empty address space — the "empty task" the
    integrated exec hands to OMOS. *)
val create_process : t -> args:string list -> Proc.t

(** Map heap and stack, attach a CPU at [entry]. Completes any exec
    path. *)
val finish_exec : t -> Proc.t -> entry:int -> unit

(** Map an image into a process: read-only segments shared through the
    page cache under [key], writable segments private, bss anonymous.
    [fresh_from_disk] marks segment sources as needing demand loads on
    first-ever touch; [touch_user_cost] charges extra user time per
    first page touch (deferred-relocation modelling). *)
val map_image :
  t ->
  Proc.t ->
  key:string ->
  ?fresh_from_disk:bool ->
  ?touch_user_cost:float ->
  Linker.Image.t ->
  unit

(** Register a [#!]-script interpreter by path. The handler receives
    the script's parameter words and the exec arguments and must return
    a ready process (charging its own costs). *)
val register_interpreter :
  t -> string -> (t -> params:string list -> args:string list -> Proc.t) -> unit

(** The traditional exec: open the executable, parse it (cost
    proportional to file size), map it. A file starting with [#!]
    dispatches to its registered interpreter instead. *)
val exec : t -> path:string -> args:string list -> Proc.t

(** Run a process to completion, charging its instructions as user
    time. Returns the exit code.
    @raise Exec_error if the process halts without exiting or runs out
    of fuel. *)
val run : t -> Proc.t -> ?fuel:int -> unit -> int

(** Tear down a finished process's address space. *)
val reap : t -> Proc.t -> unit
