(** Per-process virtual address spaces with demand paging.

    A space is a set of non-overlapping regions. Read-only regions can
    be {e shared}: their backing bytes and physical frames belong to a
    cached image and are referenced, not copied — this is where OMOS's
    "same physical memory" clients come from. Writable regions are
    private copies. Every region is demand-paged: the first touch of
    each page charges a soft fault (resident backing) or a disk read
    (first-ever load of a segment that is still "on disk").

    Instruction fetch goes through a per-region decode cache so
    simulated execution stays fast. *)

exception Fault of string

(* Residency of the segment's source, page by page, SHARED by every
   process mapping the segment: the first process to touch a page pays
   the disk read; everyone after that (and every later touch) pays only
   a soft fault. An empty array means "always resident" (anonymous
   memory, already-cached segments). *)
type backing_state = { resident : bool array }

type region = {
  lo : int;
  hi : int; (* exclusive *)
  bytes : Bytes.t; (* backing store (shared or private) *)
  writable : bool;
  shared : bool;
  label : string;
  touched : bool array; (* per-page demand accounting *)
  backing : backing_state; (* residency of the segment's source *)
  frames : Phys.frame_group;
  decode : Svm.Isa.instr option array; (* instruction cache *)
  (* extra user-time charge on first touch of each page: models
     deferred (page-wise lazy) relocation work a traditional dynamic
     loader performs in the client, per process *)
  touch_user_cost : float;
}

type stats = {
  mutable soft_faults : int;
  mutable disk_faults : int;
}

type t = {
  mutable regions : region list; (* sorted by lo *)
  phys : Phys.t;
  clock : Clock.t;
  cost : Cost.t;
  stats : stats;
  page_size : int;
}

let create ~(phys : Phys.t) ~(clock : Clock.t) ~(cost : Cost.t) () : t =
  {
    regions = [];
    phys;
    clock;
    cost;
    stats = { soft_faults = 0; disk_faults = 0 };
    page_size = Cost.page_size;
  }

let regions (t : t) = t.regions

(* Always-resident backing for anonymous regions. *)
let resident_backing () : backing_state = { resident = [||] }

(** Backing that must be demand-loaded from disk, for a segment of
    [bytes] bytes. *)
let disk_backing ~(bytes : int) : backing_state =
  { resident = Array.make (max 1 ((bytes + Cost.page_size - 1) / Cost.page_size)) false }

let check_overlap (t : t) lo hi label =
  List.iter
    (fun r ->
      if lo < r.hi && r.lo < hi then
        raise
          (Fault
             (Printf.sprintf "mapping %s [0x%x,0x%x) overlaps %s [0x%x,0x%x)" label lo
                hi r.label r.lo r.hi)))
    t.regions

let insert (t : t) (r : region) =
  let rec go = function
    | [] -> [ r ]
    | x :: rest -> if r.lo < x.lo then r :: x :: rest else x :: go rest
  in
  t.regions <- go t.regions

(** [map_shared t ~vaddr ~bytes ~frames ~backing ~label] maps a
    read-only shared segment: backing bytes and frames are referenced.
    The caller (the server/kernel) owns [frames] and [backing]. *)
let map_shared (t : t) ~(vaddr : int) ~(bytes : Bytes.t)
    ~(frames : Phys.frame_group) ~(backing : backing_state)
    ?(touch_user_cost = 0.0) ~(label : string) () : unit =
  let hi = vaddr + Bytes.length bytes in
  check_overlap t vaddr hi label;
  Phys.addref frames;
  let npages = max 1 ((Bytes.length bytes + t.page_size - 1) / t.page_size) in
  insert t
    {
      lo = vaddr;
      hi;
      bytes;
      writable = false;
      shared = true;
      label;
      touched = Array.make npages false;
      backing;
      frames;
      decode = Array.make (max 1 (Bytes.length bytes / Svm.Isa.width)) None;
      touch_user_cost;
    }

(** [map_private t ~vaddr ~init ~size ~label ()] maps a private
    writable region, initialized from [init] (zero-filled beyond it).
    [backing] tracks residency of the init content's source; anonymous
    regions omit it. *)
let map_private (t : t) ~(vaddr : int) ?(init = Bytes.empty) ?backing
    ?(touch_user_cost = 0.0) ~(size : int) ~(label : string) () : unit =
  let size = max size (Bytes.length init) in
  let hi = vaddr + size in
  check_overlap t vaddr hi label;
  let bytes = Bytes.make size '\000' in
  Bytes.blit init 0 bytes 0 (Bytes.length init);
  let npages = max 1 ((size + t.page_size - 1) / t.page_size) in
  insert t
    {
      lo = vaddr;
      hi;
      bytes;
      writable = true;
      shared = false;
      label;
      touched = Array.make npages false;
      backing = (match backing with Some b -> b | None -> resident_backing ());
      frames = Phys.alloc t.phys ~label ~bytes:size;
      decode = Array.make (max 1 (size / Svm.Isa.width)) None;
      touch_user_cost;
    }

(** Release all mappings (process teardown). *)
let destroy (t : t) : unit =
  List.iter (fun r -> Phys.decref t.phys r.frames) t.regions;
  t.regions <- []

(** [unmap t ~lo] removes the region starting at [lo] (dynamic
    unlinking). Raises {!Fault} if no region starts there. *)
let unmap (t : t) ~(lo : int) : unit =
  match List.find_opt (fun r -> r.lo = lo) t.regions with
  | Some r ->
      Phys.decref t.phys r.frames;
      t.regions <- List.filter (fun r' -> r'.lo <> lo) t.regions
  | None -> raise (Fault (Printf.sprintf "unmap: no region at 0x%x" lo))

let find_region (t : t) (addr : int) : region =
  let rec go = function
    | [] -> raise (Fault (Printf.sprintf "unmapped address 0x%x" addr))
    | r :: rest -> if addr >= r.lo && addr < r.hi then r else go rest
  in
  go t.regions

(* Demand-paging charge on first touch of a page. *)
let touch (t : t) (r : region) (off : int) : unit =
  let page = off / t.page_size in
  if not r.touched.(page) then begin
    r.touched.(page) <- true;
    if r.touch_user_cost > 0.0 then Clock.charge_user t.clock r.touch_user_cost;
    let on_disk =
      page < Array.length r.backing.resident && not r.backing.resident.(page)
    in
    if on_disk then begin
      r.backing.resident.(page) <- true;
      t.stats.disk_faults <- t.stats.disk_faults + 1;
      Clock.charge_system t.clock t.cost.Cost.soft_fault;
      Clock.charge_io t.clock t.cost.Cost.disk_read_page
    end
    else begin
      t.stats.soft_faults <- t.stats.soft_faults + 1;
      Clock.charge_system t.clock t.cost.Cost.soft_fault
    end
  end

(** Pages touched in regions whose label satisfies [pred] — the working
    set measure used by the reordering experiment. *)
let touched_pages (t : t) ?(pred = fun _ -> true) () : int =
  List.fold_left
    (fun acc r ->
      if pred r.label then
        acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.touched
      else acc)
    0 t.regions

let fault_stats (t : t) : int * int = (t.stats.soft_faults, t.stats.disk_faults)

(* -- accessors wired into the CPU -------------------------------------- *)

let load8 (t : t) (addr : int) : int =
  let r = find_region t addr in
  let off = addr - r.lo in
  touch t r off;
  Bytes.get_uint8 r.bytes off

let store8 (t : t) (addr : int) (v : int) : unit =
  let r = find_region t addr in
  if not r.writable then
    raise (Fault (Printf.sprintf "write to read-only %s at 0x%x" r.label addr));
  let off = addr - r.lo in
  touch t r off;
  Bytes.set_uint8 r.bytes off (v land 0xff)

let load32 (t : t) (addr : int) : int32 =
  let r = find_region t addr in
  let off = addr - r.lo in
  if off + 4 > Bytes.length r.bytes then
    raise (Fault (Printf.sprintf "load32 spans end of %s at 0x%x" r.label addr));
  touch t r off;
  Bytes.get_int32_le r.bytes off

let store32 (t : t) (addr : int) (v : int32) : unit =
  let r = find_region t addr in
  if not r.writable then
    raise (Fault (Printf.sprintf "write to read-only %s at 0x%x" r.label addr));
  let off = addr - r.lo in
  if off + 4 > Bytes.length r.bytes then
    raise (Fault (Printf.sprintf "store32 spans end of %s at 0x%x" r.label addr));
  touch t r off;
  Bytes.set_int32_le r.bytes off v

(* Writable regions can be modified (lazy-binding patches), so their
   decode cache must be invalidated on store; rather than tracking
   that, only read-only regions use the cache. *)
let fetch (t : t) (addr : int) : Svm.Isa.instr =
  let r = find_region t addr in
  let off = addr - r.lo in
  touch t r off;
  if off mod Svm.Isa.width <> 0 || off + Svm.Isa.width > Bytes.length r.bytes then
    raise (Fault (Printf.sprintf "misaligned or out-of-range fetch at 0x%x" addr));
  let idx = off / Svm.Isa.width in
  if r.writable then Svm.Encode.decode_at r.bytes off
  else
    match r.decode.(idx) with
    | Some i -> i
    | None ->
        let i = Svm.Encode.decode_at r.bytes off in
        r.decode.(idx) <- Some i;
        i

(** CPU memory interface for this address space. *)
let mem (t : t) : Svm.Cpu.mem =
  {
    Svm.Cpu.load8 = load8 t;
    store8 = store8 t;
    load32 = load32 t;
    store32 = store32 t;
    fetch = fetch t;
  }
