(** Syscall numbers of the simulated OS.

    Numbers at or above {!omos_base} are forwarded to the handler the
    OMOS server (or a shared-library scheme runtime) installs in the
    kernel — the simulated equivalents of "contact OMOS via IPC" and of
    the lazy-binding trap of the baseline dynamic scheme. *)

let sys_exit = 0
let sys_write = 1 (* write(fd, buf, len) -> len *)
let sys_open = 2 (* open(path) -> fd | -1 *)
let sys_read = 3 (* read(fd, buf, len) -> n *)
let sys_close = 4 (* close(fd) -> 0 *)
let sys_stat = 5 (* stat(path, out[2]: kind, size) -> 0 | -1 *)
let sys_readdir = 6 (* readdir(fd, index, buf) -> namelen | -1 *)
let sys_getpid = 8
let sys_argc = 9 (* argc() -> n *)
let sys_argv = 10 (* argv(i, buf, maxlen) -> len | -1 *)

(** First syscall number owned by upcall handlers (OMOS / schemes). *)
let omos_base = 100

(** OMOS: load the shared library named by the string at r1; returns
    the address of its entry-point hash table (partial-image scheme). *)
let omos_load_library = 100

(** Lazy PLT binding trap of the baseline dynamic scheme: r1 = module
    id, r2 = import index; returns the bound address. *)
let plt_bind = 110
