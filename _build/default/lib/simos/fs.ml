(** The in-memory filesystem of the simulated OS.

    Holds object files, meta-object sources, executables, and the data
    directories the `ls` workload lists. Charging for I/O happens at
    the syscall layer and in the exec paths, not here. *)

exception Fs_error of string

type node = File of Bytes.t | Dir of (string, node) Hashtbl.t

type t = { root : (string, node) Hashtbl.t }

let create () : t = { root = Hashtbl.create 16 }

let split_path (path : string) : string list =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let rec lookup_in (dir : (string, node) Hashtbl.t) (parts : string list) : node option =
  match parts with
  | [] -> Some (Dir dir)
  | p :: rest -> (
      match Hashtbl.find_opt dir p with
      | Some (Dir d) -> lookup_in d rest
      | Some (File _ as f) -> if rest = [] then Some f else None
      | None -> None)

let lookup (t : t) (path : string) : node option = lookup_in t.root (split_path path)

let exists (t : t) (path : string) : bool = lookup t path <> None

(** Create all directories along [path]. *)
let mkdir_p (t : t) (path : string) : unit =
  let rec go dir = function
    | [] -> ()
    | p :: rest -> (
        match Hashtbl.find_opt dir p with
        | Some (Dir d) -> go d rest
        | Some (File _) -> raise (Fs_error (path ^ ": component is a file"))
        | None ->
            let d = Hashtbl.create 8 in
            Hashtbl.replace dir p (Dir d);
            go d rest)
  in
  go t.root (split_path path)

let write_file (t : t) (path : string) (data : Bytes.t) : unit =
  let parts = split_path path in
  match List.rev parts with
  | [] -> raise (Fs_error "cannot write to /")
  | name :: rev_dir ->
      let dirpath = List.rev rev_dir in
      let rec go dir = function
        | [] -> Hashtbl.replace dir name (File data)
        | p :: rest -> (
            match Hashtbl.find_opt dir p with
            | Some (Dir d) -> go d rest
            | Some (File _) -> raise (Fs_error (path ^ ": component is a file"))
            | None ->
                let d = Hashtbl.create 8 in
                Hashtbl.replace dir p (Dir d);
                go d rest)
      in
      go t.root dirpath

let read_file (t : t) (path : string) : Bytes.t =
  match lookup t path with
  | Some (File b) -> b
  | Some (Dir _) -> raise (Fs_error (path ^ ": is a directory"))
  | None -> raise (Fs_error (path ^ ": no such file"))

let remove (t : t) (path : string) : unit =
  match List.rev (split_path path) with
  | [] -> raise (Fs_error "cannot remove /")
  | name :: rev_dir -> (
      match lookup_in t.root (List.rev rev_dir) with
      | Some (Dir d) -> Hashtbl.remove d name
      | _ -> raise (Fs_error (path ^ ": no such directory")))

(** Directory entries, sorted (what readdir returns). *)
let list_dir (t : t) (path : string) : string list =
  match lookup t path with
  | Some (Dir d) -> List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) d [])
  | Some (File _) -> raise (Fs_error (path ^ ": not a directory"))
  | None -> raise (Fs_error (path ^ ": no such directory"))

(** File size, or directory entry count; [None] if absent. *)
let stat (t : t) (path : string) : [ `File of int | `Dir of int ] option =
  match lookup t path with
  | Some (File b) -> Some (`File (Bytes.length b))
  | Some (Dir d) -> Some (`Dir (Hashtbl.length d))
  | None -> None

(** Total bytes stored under [path] — disk-consumption accounting for
    the cache experiments. *)
let disk_usage (t : t) (path : string) : int =
  let rec size = function
    | File b -> Bytes.length b
    | Dir d -> Hashtbl.fold (fun _ n acc -> acc + size n) d 0
  in
  match lookup t path with Some n -> size n | None -> 0
