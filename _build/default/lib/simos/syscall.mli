(** Syscall numbers of the simulated OS.

    Numbers at or above {!omos_base} are forwarded to the handler the
    OMOS server (or a shared-library scheme runtime) installs in the
    kernel — the simulated equivalents of "contact OMOS via IPC" and of
    the lazy-binding trap of the baseline dynamic scheme. *)

val sys_exit : int
val sys_write : int
val sys_open : int
val sys_read : int
val sys_close : int
val sys_stat : int
val sys_readdir : int
val sys_getpid : int
val sys_argc : int
val sys_argv : int
val omos_base : int
val omos_load_library : int
val plt_bind : int
