(** Simulated processes: an address space, a CPU, file descriptors,
    arguments, and captured stdout. *)

type fd =
  | Fd_file of { path : string; data : Bytes.t; mutable pos : int }
  | Fd_dir of { path : string; entries : string array }

type t = {
  pid : int;
  aspace : Addr_space.t;
  mutable cpu : Svm.Cpu.t option;  (** installed at exec time *)
  args : string list;  (** argv, argv.(0) = program name *)
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  stdout : Buffer.t;
  mutable exit_code : int option;
}

val create : pid:int -> aspace:Addr_space.t -> args:string list -> t

(** Allocate the next descriptor number for [fd]. *)
val alloc_fd : t -> fd -> int

val find_fd : t -> int -> fd option
val close_fd : t -> int -> unit

(** Everything the process wrote to fd 1/2. *)
val stdout_contents : t -> string

(** @raise Invalid_argument if the process was never exec'd. *)
val cpu_exn : t -> Svm.Cpu.t
