(** The s-expression reader for OMOS blueprints.

    "Currently, the specification language used by OMOS has a simple
    Lisp-like syntax. The first word in an expression is a graph
    operation followed by a series of arguments. Arguments can be the
    names of server objects, strings, or other graph operations."

    Atoms are symbols (operator names and server-object paths such as
    [/lib/libc]), double-quoted strings, and integers (decimal or hex).
    Comments run from [;] to end of line. *)

exception Parse_error of string * int
type t = Sym of string | Str of string | Int of int | List of t list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
type reader = { src : string; mutable pos : int; mutable line : int; }
val fail : reader -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val peek : reader -> char option
val advance : reader -> unit
val skip_ws : reader -> unit
val is_sym_char : char -> bool
val read_string : reader -> t
val read_atom : reader -> t
val read_form : reader -> t
val parse_one : string -> t
val parse_many : string -> t list
