(** Meta-object descriptions (paper §3.1): "templates describing the
    construction and characteristics of objects".

    A meta-object source file (cf. Figure 1) is a sequence of forms:
    an optional [(default-specialization "style" args…)], an optional
    [(constraint-list "T" addr "D" addr)], and the blueprint
    expression(s) — multiple trailing expressions merge implicitly. *)

exception Meta_error of string

type t = {
  name : string;
  default_spec : (string * Mgraph.value list) option;
  constraints : (Mgraph.seg * int) list;
      (** default address constraints: (segment, preferred base) *)
  root : Mgraph.node;
}

(** Parse a meta-object file. @raise Meta_error. *)
val parse : name:string -> string -> t

(** Build a meta-object directly from a graph (no surface syntax). *)
val of_graph :
  ?default_spec:(string * Mgraph.value list) option ->
  ?constraints:(Mgraph.seg * int) list ->
  name:string ->
  Mgraph.node ->
  t

(** The graph to evaluate under an optional requested specialization:
    an explicit request wins over the default; the constraint-list
    wraps everything as [Constrain] nodes. *)
val effective_graph : t -> spec:(string * Mgraph.value list) option -> Mgraph.node

(** Digest identifying the construction (cache key component). *)
val digest : t -> spec:(string * Mgraph.value list) option -> string
