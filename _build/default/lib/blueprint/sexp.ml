(** The s-expression reader for OMOS blueprints.

    "Currently, the specification language used by OMOS has a simple
    Lisp-like syntax. The first word in an expression is a graph
    operation followed by a series of arguments. Arguments can be the
    names of server objects, strings, or other graph operations."

    Atoms are symbols (operator names and server-object paths such as
    [/lib/libc]), double-quoted strings, and integers (decimal or hex).
    Comments run from [;] to end of line. *)

exception Parse_error of string * int (* message, line *)

type t =
  | Sym of string (* operator name or object path *)
  | Str of string
  | Int of int
  | List of t list

let rec pp ppf = function
  | Sym s -> Format.pp_print_string ppf s
  | Str s -> Format.fprintf ppf "%S" s
  | Int n -> if n > 4095 then Format.fprintf ppf "0x%x" n else Format.pp_print_int ppf n
  | List items ->
      Format.fprintf ppf "(@[<hov>%a@])"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items

let to_string (s : t) : string = Format.asprintf "%a" pp s

type reader = { src : string; mutable pos : int; mutable line : int }

let fail r fmt = Format.kasprintf (fun s -> raise (Parse_error (s, r.line))) fmt

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let advance r =
  (if r.pos < String.length r.src && r.src.[r.pos] = '\n' then r.line <- r.line + 1);
  r.pos <- r.pos + 1

let rec skip_ws r =
  match peek r with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance r;
      skip_ws r
  | Some ';' ->
      while peek r <> None && peek r <> Some '\n' do
        advance r
      done;
      skip_ws r
  | _ -> ()

let is_sym_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9'
  | '/' | '.' | '_' | '-' | '$' | '*' | '+' | '^' | '?' | '\\' | '[' | ']' | '!' | '=' | '<' | '>' | '%' | '&' | '|' | '~' | '@' | ':' ->
      true
  | _ -> false

let read_string r =
  advance r;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek r with
    | None -> fail r "unterminated string"
    | Some '"' -> advance r
    | Some '\\' ->
        advance r;
        (match peek r with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some c -> Buffer.add_char buf c
        | None -> fail r "unterminated string");
        advance r;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance r;
        go ()
  in
  go ();
  Str (Buffer.contents buf)

let read_atom r =
  let start = r.pos in
  while (match peek r with Some c -> is_sym_char c | None -> false) do
    advance r
  done;
  let text = String.sub r.src start (r.pos - start) in
  if text = "" then fail r "unexpected character %C"
      (match peek r with Some c -> c | None -> ' ');
  match int_of_string_opt text with Some n -> Int n | None -> Sym text

let rec read_form r : t =
  skip_ws r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some '(' ->
      advance r;
      let rec items acc =
        skip_ws r;
        match peek r with
        | Some ')' ->
            advance r;
            List (List.rev acc)
        | None -> fail r "unterminated list"
        | Some _ -> items (read_form r :: acc)
      in
      items []
  | Some '"' -> read_string r
  | Some ')' -> fail r "unexpected )"
  | Some _ -> read_atom r

(** [parse_one src] reads a single form. *)
let parse_one (src : string) : t =
  let r = { src; pos = 0; line = 1 } in
  let form = read_form r in
  skip_ws r;
  (match peek r with
  | Some c -> fail r "trailing input starting with %C" c
  | None -> ());
  form

(** [parse_many src] reads all forms in the input — the shape of a
    meta-object file (constraint-list, default specialization, root
    expression, …). *)
let parse_many (src : string) : t list =
  let r = { src; pos = 0; line = 1 } in
  let rec go acc =
    skip_ws r;
    match peek r with None -> List.rev acc | Some _ -> go (read_form r :: acc)
  in
  go []
