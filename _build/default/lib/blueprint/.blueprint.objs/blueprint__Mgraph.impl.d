lib/blueprint/mgraph.ml: Constraints Digest Format Hashtbl Jigsaw List Minic Printf Sexp Sof String
