lib/blueprint/sexp.ml: Buffer Format List String
