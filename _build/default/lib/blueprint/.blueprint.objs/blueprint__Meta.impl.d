lib/blueprint/meta.ml: Format List Mgraph Sexp
