lib/blueprint/mgraph.mli: Constraints Hashtbl Jigsaw Sexp Sof
