lib/blueprint/meta.mli: Mgraph
