lib/blueprint/sexp.mli: Format
