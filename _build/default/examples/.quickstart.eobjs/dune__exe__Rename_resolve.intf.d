examples/rename_resolve.mli:
