examples/interposition.ml: Blueprint Jigsaw List Minic Omos Printf Simos Workloads
