examples/dynload_demo.mli:
