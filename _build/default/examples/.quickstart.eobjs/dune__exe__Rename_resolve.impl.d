examples/rename_resolve.ml: Blueprint Linker Minic Omos Printf Simos Workloads
