examples/partial_image.mli:
