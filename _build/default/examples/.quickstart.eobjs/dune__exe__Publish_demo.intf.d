examples/publish_demo.mli:
