examples/reorder_demo.mli:
