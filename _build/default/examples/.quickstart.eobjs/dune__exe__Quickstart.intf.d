examples/quickstart.mli:
