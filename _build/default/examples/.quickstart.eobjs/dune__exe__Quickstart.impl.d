examples/quickstart.ml: Format Linker List Omos Printf Simos String
