examples/partial_image.ml: Hashtbl List Omos Printf Simos
