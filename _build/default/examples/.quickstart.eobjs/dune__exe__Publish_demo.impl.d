examples/publish_demo.ml: Bytes List Omos Printf Simos String
