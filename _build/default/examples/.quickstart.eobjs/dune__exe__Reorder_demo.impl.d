examples/reorder_demo.ml: Blueprint List Omos Printf Simos String Workloads
