examples/dynload_demo.ml: Minic Omos Printf Simos Workloads
