examples/interposition.mli:
