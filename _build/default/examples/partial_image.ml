(* Partial-image shared libraries (paper §4.2).

   "The partial-image application contains stub routines for each
   library entry point. On the first invocation of a routine in a
   library, the client stub contacts OMOS and loads in the library ...
   Subsequent invocations of the function are made through the pointer
   in that table."

   This example launches ls as a partial-image program and shows the
   library arriving lazily: before the first libc call the process has
   no library mapping; after the run, the stubs are bound.

   Run with: dune exec examples/partial_image.exe *)

let () =
  let w = Omos.World.create () in
  let k = w.Omos.World.kernel in
  let prog =
    Omos.Schemes.partial_image_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  Printf.printf "client stubs generated: %d imports, %d bytes of dispatch machinery\n"
    prog.Omos.Schemes.imports prog.Omos.Schemes.dispatch_bytes;

  (* a perfectly ordinary executable lives in /bin *)
  Printf.printf "executable on disk: /bin/ls.partial (%d bytes)\n"
    (Simos.Fs.disk_usage k.Simos.Kernel.fs "/bin/ls.partial");

  let p = prog.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let st = Hashtbl.find w.Omos.World.rt.Omos.Schemes.table p.Simos.Proc.pid in
  Printf.printf "\nafter exec, before running: library mapped = %b, regions = %d\n"
    st.Omos.Schemes.libs_mapped
    (List.length (Simos.Addr_space.regions p.Simos.Proc.aspace));

  let code = Simos.Kernel.run k p () in
  Printf.printf "after the run:              library mapped = %b, regions = %d\n"
    st.Omos.Schemes.libs_mapped
    (List.length (Simos.Addr_space.regions p.Simos.Proc.aspace));
  Printf.printf "stub bindings performed: %d\n" st.Omos.Schemes.binds;
  Printf.printf "\nprogram output (exit %d):\n%s" code (Simos.Proc.stdout_contents p);
  Simos.Kernel.reap k p;

  (* the trade-off the paper describes: debugging convenience (a normal
     executable) for per-call indirection *)
  Printf.printf
    "\neach bound call costs %d extra instructions through the branch table;\n\
     the self-contained scheme costs zero but exports no normal executable.\n"
    Omos.Stubs.bound_path_instrs
