(* Tests of the simulated OS: filesystem, clock, physical-memory
   accounting, demand paging, syscalls, and the traditional exec path. *)

(* -- fs ----------------------------------------------------------------- *)

let test_fs_basic () =
  let fs = Simos.Fs.create () in
  Simos.Fs.mkdir_p fs "/a/b/c";
  Simos.Fs.write_file fs "/a/b/c/x.txt" (Bytes.of_string "hello");
  Alcotest.(check bool) "exists" true (Simos.Fs.exists fs "/a/b/c/x.txt");
  Alcotest.(check string) "content" "hello"
    (Bytes.to_string (Simos.Fs.read_file fs "/a/b/c/x.txt"));
  Alcotest.(check (list string)) "listing" [ "x.txt" ] (Simos.Fs.list_dir fs "/a/b/c")

let test_fs_stat_and_remove () =
  let fs = Simos.Fs.create () in
  Simos.Fs.write_file fs "/f" (Bytes.create 10);
  (match Simos.Fs.stat fs "/f" with
  | Some (`File 10) -> ()
  | _ -> Alcotest.fail "bad stat");
  Simos.Fs.remove fs "/f";
  Alcotest.(check bool) "gone" false (Simos.Fs.exists fs "/f")

let test_fs_errors () =
  let fs = Simos.Fs.create () in
  (try
     ignore (Simos.Fs.read_file fs "/missing");
     Alcotest.fail "expected Fs_error"
   with Simos.Fs.Fs_error _ -> ());
  Simos.Fs.write_file fs "/file" Bytes.empty;
  try
    Simos.Fs.mkdir_p fs "/file/sub";
    Alcotest.fail "expected Fs_error"
  with Simos.Fs.Fs_error _ -> ()

let test_fs_disk_usage () =
  let fs = Simos.Fs.create () in
  Simos.Fs.write_file fs "/cache/a" (Bytes.create 100);
  Simos.Fs.write_file fs "/cache/b" (Bytes.create 50);
  Simos.Fs.write_file fs "/other" (Bytes.create 7);
  Alcotest.(check int) "usage" 150 (Simos.Fs.disk_usage fs "/cache")

(* -- clock --------------------------------------------------------------- *)

let test_clock () =
  let c = Simos.Clock.create () in
  Simos.Clock.charge_user c 10.0;
  Simos.Clock.charge_system c 5.0;
  Simos.Clock.charge_io c 100.0;
  Alcotest.(check (float 0.001)) "elapsed" 115.0 (Simos.Clock.elapsed c);
  let snap = Simos.Clock.snapshot c in
  Simos.Clock.charge_user c 1.0;
  let u, s, e = Simos.Clock.since c snap in
  Alcotest.(check (float 0.001)) "du" 1.0 u;
  Alcotest.(check (float 0.001)) "ds" 0.0 s;
  Alcotest.(check (float 0.001)) "de" 1.0 e

(* -- phys ----------------------------------------------------------------- *)

let test_phys_sharing () =
  let phys = Simos.Phys.create () in
  let g = Simos.Phys.alloc phys ~label:"libc.text" ~bytes:(3 * 4096) in
  Simos.Phys.addref g;
  Simos.Phys.addref g;
  Alcotest.(check int) "resident" 3 (Simos.Phys.resident_pages phys);
  Alcotest.(check int) "mapped" 9 (Simos.Phys.mapped_pages phys);
  Alcotest.(check int) "saved" 6 (Simos.Phys.saved_pages phys);
  Simos.Phys.decref phys g;
  Simos.Phys.decref phys g;
  Simos.Phys.decref phys g;
  Alcotest.(check int) "freed" 0 (Simos.Phys.resident_pages phys)

(* -- addr_space ------------------------------------------------------------ *)

let mk_space () =
  let phys = Simos.Phys.create () in
  let clock = Simos.Clock.create () in
  let space = Simos.Addr_space.create ~phys ~clock ~cost:Simos.Cost.hpux () in
  (space, clock, phys)

let test_paging_faults_once_per_page () =
  let space, clock, _ = mk_space () in
  Simos.Addr_space.map_private space ~vaddr:0x10000 ~size:0x3000 ~label:"anon" ();
  let before = Simos.Clock.elapsed clock in
  ignore (Simos.Addr_space.load8 space 0x10000);
  let after_first = Simos.Clock.elapsed clock in
  Alcotest.(check bool) "first touch charged" true (after_first > before);
  ignore (Simos.Addr_space.load8 space 0x10004);
  Alcotest.(check (float 0.0001)) "second touch free" after_first
    (Simos.Clock.elapsed clock);
  ignore (Simos.Addr_space.load8 space 0x12000);
  Alcotest.(check bool) "new page charged" true
    (Simos.Clock.elapsed clock > after_first);
  let soft, disk = Simos.Addr_space.fault_stats space in
  Alcotest.(check (pair int int)) "fault counts" (2, 0) (soft, disk)

let test_disk_backing_charges_io () =
  let space, clock, _ = mk_space () in
  let backing = Simos.Addr_space.disk_backing ~bytes:0x2000 in
  Simos.Addr_space.map_private space ~vaddr:0x10000
    ~init:(Bytes.make 0x2000 'a') ~backing ~size:0x2000 ~label:"filedata" ();
  ignore (Simos.Addr_space.load8 space 0x10000);
  Alcotest.(check bool) "io charged" true (clock.Simos.Clock.io > 0.0);
  let _, disk = Simos.Addr_space.fault_stats space in
  Alcotest.(check int) "disk fault" 1 disk

let test_disk_backing_shared_residency () =
  (* two processes mapping the same segment: only the first touch pays
     the disk read *)
  let phys = Simos.Phys.create () in
  let clock = Simos.Clock.create () in
  let cost = Simos.Cost.hpux in
  let s1 = Simos.Addr_space.create ~phys ~clock ~cost () in
  let s2 = Simos.Addr_space.create ~phys ~clock ~cost () in
  let bytes = Bytes.make 0x1000 'c' in
  let frames = Simos.Phys.alloc phys ~label:"seg" ~bytes:0x1000 in
  let backing = Simos.Addr_space.disk_backing ~bytes:0x1000 in
  Simos.Addr_space.map_shared s1 ~vaddr:0x4000 ~bytes ~frames ~backing ~label:"seg" ();
  Simos.Addr_space.map_shared s2 ~vaddr:0x4000 ~bytes ~frames ~backing ~label:"seg" ();
  ignore (Simos.Addr_space.load8 s1 0x4000);
  let io_after_first = clock.Simos.Clock.io in
  ignore (Simos.Addr_space.load8 s2 0x4000);
  Alcotest.(check (float 0.0001)) "second process: no disk read" io_after_first
    clock.Simos.Clock.io;
  Alcotest.(check bool) "but charged a soft fault" true
    (fst (Simos.Addr_space.fault_stats s2) = 1)

let test_write_to_readonly_faults () =
  let space, _, phys = mk_space () in
  let bytes = Bytes.make 0x1000 'x' in
  let frames = Simos.Phys.alloc phys ~label:"ro" ~bytes:0x1000 in
  Simos.Addr_space.map_shared space ~vaddr:0x4000 ~bytes ~frames
    ~backing:{ Simos.Addr_space.resident = [||] } ~label:"ro" ();
  try
    Simos.Addr_space.store8 space 0x4000 1;
    Alcotest.fail "expected fault"
  with Simos.Addr_space.Fault _ -> ()

let test_unmapped_fault () =
  let space, _, _ = mk_space () in
  try
    ignore (Simos.Addr_space.load32 space 0xDEAD000);
    Alcotest.fail "expected fault"
  with Simos.Addr_space.Fault _ -> ()

let test_overlap_rejected () =
  let space, _, _ = mk_space () in
  Simos.Addr_space.map_private space ~vaddr:0x10000 ~size:0x2000 ~label:"a" ();
  try
    Simos.Addr_space.map_private space ~vaddr:0x11000 ~size:0x2000 ~label:"b" ();
    Alcotest.fail "expected fault"
  with Simos.Addr_space.Fault _ -> ()

let test_touched_pages_working_set () =
  let space, _, _ = mk_space () in
  Simos.Addr_space.map_private space ~vaddr:0x10000 ~size:0x10000 ~label:"lib.text" ();
  ignore (Simos.Addr_space.load8 space 0x10000);
  ignore (Simos.Addr_space.load8 space 0x15000);
  ignore (Simos.Addr_space.load8 space 0x15800);
  Alcotest.(check int) "working set" 2
    (Simos.Addr_space.touched_pages space ~pred:(fun l -> l = "lib.text") ())

(* -- kernel: exec + syscalls ------------------------------------------------ *)

(* A hand-assembled program exercising write/open/readdir/stat/argv. *)
let hello_image () =
  let a = Sof.Asm.create "hello" in
  Sof.Asm.label a "_start";
  (* write(1, msg, 6) *)
  Sof.Asm.instr a (Svm.Isa.Movi (1, 1l));
  Sof.Asm.lea a 2 "msg";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 6l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_write));
  (* exit(7) *)
  Sof.Asm.instr a (Svm.Isa.Movi (1, 7l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_exit));
  Sof.Asm.data_label a "msg";
  Sof.Asm.data_string a "hello\n";
  let obj = Sof.Asm.finish a in
  fst (Linker.Link.link ~layout:{ Linker.Link.text_base = 0x100000; data_base = 0x200000 } [ obj ])

let test_exec_and_run () =
  let k = Simos.Kernel.create () in
  let img = hello_image () in
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/bin";
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/hello" (Linker.Image.encode img);
  let p = Simos.Kernel.exec k ~path:"/bin/hello" ~args:[ "hello" ] in
  let code = Simos.Kernel.run k p () in
  Alcotest.(check int) "exit code" 7 code;
  Alcotest.(check string) "stdout" "hello\n" (Simos.Proc.stdout_contents p);
  Alcotest.(check bool) "time charged" true (Simos.Clock.elapsed k.Simos.Kernel.clock > 0.0)

let test_exec_missing_file () =
  let k = Simos.Kernel.create () in
  try
    ignore (Simos.Kernel.exec k ~path:"/bin/nope" ~args:[]);
    Alcotest.fail "expected Exec_error"
  with Simos.Kernel.Exec_error _ -> ()

let test_exec_text_sharing () =
  (* exec the same binary twice: the second run shares text frames *)
  let k = Simos.Kernel.create () in
  let img = hello_image () in
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/bin";
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/hello" (Linker.Image.encode img);
  let p1 = Simos.Kernel.exec k ~path:"/bin/hello" ~args:[] in
  ignore (Simos.Kernel.run k p1 ());
  let resident_one = Simos.Phys.resident_pages k.Simos.Kernel.phys in
  let p2 = Simos.Kernel.exec k ~path:"/bin/hello" ~args:[] in
  ignore (Simos.Kernel.run k p2 ());
  let saved = Simos.Phys.saved_pages k.Simos.Kernel.phys in
  Alcotest.(check bool) "text shared" true (saved >= 1);
  Alcotest.(check bool) "resident grows less than double" true
    (Simos.Phys.resident_pages k.Simos.Kernel.phys < 2 * resident_one)

let test_second_exec_cheaper_io () =
  let k = Simos.Kernel.create () in
  let img = hello_image () in
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/bin";
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/hello" (Linker.Image.encode img);
  let snap1 = Simos.Clock.snapshot k.Simos.Kernel.clock in
  let p1 = Simos.Kernel.exec k ~path:"/bin/hello" ~args:[] in
  ignore (Simos.Kernel.run k p1 ());
  let _, _, e1 = Simos.Clock.since k.Simos.Kernel.clock snap1 in
  let snap2 = Simos.Clock.snapshot k.Simos.Kernel.clock in
  let p2 = Simos.Kernel.exec k ~path:"/bin/hello" ~args:[] in
  ignore (Simos.Kernel.run k p2 ());
  let _, _, e2 = Simos.Clock.since k.Simos.Kernel.clock snap2 in
  Alcotest.(check bool) "warm exec faster" true (e2 < e1)

let test_syscall_args_and_dirs () =
  let k = Simos.Kernel.create () in
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/d";
  Simos.Fs.write_file k.Simos.Kernel.fs "/d/zfile" (Bytes.of_string "abc");
  Simos.Fs.write_file k.Simos.Kernel.fs "/d/afile" (Bytes.of_string "x");
  (* program: open arg1, readdir entries 0 and 1, print names *)
  let a = Sof.Asm.create "lsmini" in
  Sof.Asm.label a "_start";
  (* getarg(1, buf, 64) *)
  Sof.Asm.instr a (Svm.Isa.Movi (1, 1l));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Movi (3, 64l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_argv));
  (* fd = open(buf) *)
  Sof.Asm.lea a 1 "buf";
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_open));
  Sof.Asm.instr a (Svm.Isa.Mov (5, 0));
  (* readdir(fd, 0, buf) ; write(1, buf, r0) *)
  Sof.Asm.instr a (Svm.Isa.Mov (1, 5));
  Sof.Asm.instr a (Svm.Isa.Movi (2, 0l));
  Sof.Asm.lea a 3 "buf";
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_readdir));
  Sof.Asm.instr a (Svm.Isa.Movi (1, 1l));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Mov (3, 0));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_write));
  (* readdir(fd, 1, buf) ; write *)
  Sof.Asm.instr a (Svm.Isa.Mov (1, 5));
  Sof.Asm.instr a (Svm.Isa.Movi (2, 1l));
  Sof.Asm.lea a 3 "buf";
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_readdir));
  Sof.Asm.instr a (Svm.Isa.Movi (1, 1l));
  Sof.Asm.lea a 2 "buf";
  Sof.Asm.instr a (Svm.Isa.Mov (3, 0));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_write));
  (* exit(0) *)
  Sof.Asm.instr a (Svm.Isa.Movi (1, 0l));
  Sof.Asm.instr a (Svm.Isa.Sys (Int32.of_int Simos.Syscall.sys_exit));
  Sof.Asm.bss a "buf" 64;
  let obj = Sof.Asm.finish a in
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x100000; data_base = 0x200000 }
      [ obj ]
  in
  Simos.Fs.mkdir_p k.Simos.Kernel.fs "/bin";
  Simos.Fs.write_file k.Simos.Kernel.fs "/bin/lsmini" (Linker.Image.encode img);
  let p = Simos.Kernel.exec k ~path:"/bin/lsmini" ~args:[ "lsmini"; "/d" ] in
  ignore (Simos.Kernel.run k p ());
  (* entries come back sorted *)
  Alcotest.(check string) "dir entries" "afilezfile" (Simos.Proc.stdout_contents p)

let () =
  Alcotest.run "simos"
    [
      ( "fs",
        [
          Alcotest.test_case "basic" `Quick test_fs_basic;
          Alcotest.test_case "stat/remove" `Quick test_fs_stat_and_remove;
          Alcotest.test_case "errors" `Quick test_fs_errors;
          Alcotest.test_case "disk usage" `Quick test_fs_disk_usage;
        ] );
      ("clock", [ Alcotest.test_case "charging" `Quick test_clock ]);
      ("phys", [ Alcotest.test_case "sharing" `Quick test_phys_sharing ]);
      ( "paging",
        [
          Alcotest.test_case "fault once per page" `Quick test_paging_faults_once_per_page;
          Alcotest.test_case "disk backing" `Quick test_disk_backing_charges_io;
          Alcotest.test_case "shared residency" `Quick test_disk_backing_shared_residency;
          Alcotest.test_case "readonly write" `Quick test_write_to_readonly_faults;
          Alcotest.test_case "unmapped" `Quick test_unmapped_fault;
          Alcotest.test_case "overlap" `Quick test_overlap_rejected;
          Alcotest.test_case "working set" `Quick test_touched_pages_working_set;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "exec and run" `Quick test_exec_and_run;
          Alcotest.test_case "missing file" `Quick test_exec_missing_file;
          Alcotest.test_case "text sharing" `Quick test_exec_text_sharing;
          Alcotest.test_case "warm exec" `Quick test_second_exec_cheaper_io;
          Alcotest.test_case "args and dirs" `Quick test_syscall_args_and_dirs;
        ] );
    ]
