(* Tests of the peephole optimizer: semantics must be identical to the
   debuggable build across the whole behaviour battery (reusing the
   differential program generator), with measurably smaller text. *)

let crt0 () = Workloads.Crt0.obj ()

let run_obj obj =
  let img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x20000 }
      [ crt0 (); obj ]
  in
  let k = Simos.Kernel.create () in
  let out = Buffer.create 64 in
  ignore out;
  let p = Simos.Kernel.create_process k ~args:[ "t" ] in
  Simos.Kernel.map_image k p ~key:(obj.Sof.Object_file.name ^ Linker.Image.digest img) img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  let code = Simos.Kernel.run k p () in
  (code, Simos.Proc.stdout_contents p)

let both src =
  let plain = Minic.Driver.compile ~name:"p.o" src in
  let opt = Minic.Driver.compile ~optimize:true ~name:"o.o" src in
  (plain, opt)

let check_same ?(name = "program") src =
  let plain, opt = both src in
  let c1, o1 = run_obj plain in
  let c2, o2 = run_obj opt in
  Alcotest.(check int) (name ^ ": exit") c1 c2;
  Alcotest.(check string) (name ^ ": output") o1 o2

let test_semantics_preserved_basics () =
  check_same ~name:"arith" "int main() { return (2 + 3 * 4 - 1) % 64; }";
  check_same ~name:"locals"
    "int f(int a, int b) { int s; s = a * 2 + b; return s - 1; } \
     int main() { return f(10, 5); }";
  check_same ~name:"globals" "int g = 7; int main() { g = g + g * 2; return g; }";
  check_same ~name:"arrays"
    "int a[8]; int main() { int i; i = 0; while (i < 8) { a[i] = i * i; i = i + 1; } \
     return a[3] + a[7]; }";
  check_same ~name:"recursion"
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
     int main() { return fib(11) % 64; }";
  check_same ~name:"shortcircuit"
    "int g = 0; int t() { g = g + 1; return 1; } \
     int main() { int x; x = 0 && t(); x = 1 || t(); return g; }";
  check_same ~name:"strings"
    "int main() { __syscall(1, 1, \"hey\", 3); return 0; }"

let test_semantics_preserved_random () =
  (* reuse shapes similar to the differential generator: nested calls
     and expressions that exercise the push/pop windows heavily *)
  for seed = 1 to 12 do
    let k1 = (seed * 7) mod 23 and k2 = (seed * 13) mod 31 in
    check_same ~name:(Printf.sprintf "gen%d" seed)
      (Printf.sprintf
         "int h(int a, int b) { return a * %d - b * %d + (a & b); } \
          int main() { int a; int b; int c; a = %d; b = %d; c = 0; \
          while (a > 0) { c = c + h(a, b) - h(b, a); a = a - 1; b = b + 1; } \
          return c %% 64; }"
         (k1 + 2) (k2 + 1) (seed + 3) (seed * 2))
  done

let text_size (o : Sof.Object_file.t) = Bytes.length o.Sof.Object_file.text

let test_text_shrinks () =
  let plain, opt = both
      "int f(int a, int b) { return a * 3 + b * 5 - (a & 7) + (b | 1); } \
       int main() { int i; int s; i = 0; s = 0; \
       while (i < 10) { s = s + f(i, s); i = i + 1; } return s % 64; }"
  in
  let p = text_size plain and o = text_size opt in
  Alcotest.(check bool)
    (Printf.sprintf "optimized %d < debuggable %d (>=15%% saved)" o p)
    true
    (float_of_int o <= 0.85 *. float_of_int p)

let test_codegen_size_ratio_matches_paper () =
  (* the paper's codegen: 203 KB optimized vs 289 KB debuggable text —
     a 0.70 ratio. Our optimizer should land in the same region. *)
  let debuggable =
    List.fold_left
      (fun a (_, (o : Sof.Object_file.t)) -> a + text_size o)
      0 (Workloads.Codegen_gen.objects ())
  in
  let optimized =
    List.fold_left
      (fun a o -> a + text_size o)
      0
      (List.map
         (fun f -> Minic.Driver.compile ~optimize:true ~name:"cg.o"
             (Workloads.Codegen_gen.file_source f))
         (List.init Workloads.Codegen_gen.nfiles (fun i -> i)))
  in
  (* compare per-file totals (main excluded on the optimized side) *)
  let debuggable_files =
    List.fold_left
      (fun a (path, (o : Sof.Object_file.t)) ->
        if path = "/obj/codegen/main.o" then a else a + text_size o)
      0 (Workloads.Codegen_gen.objects ())
  in
  ignore debuggable;
  let ratio = float_of_int optimized /. float_of_int debuggable_files in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [0.55, 0.85] (paper: 203/289 = 0.70)" ratio)
    true
    (ratio >= 0.55 && ratio <= 0.85)

let test_optimizer_is_idempotent_on_straightline () =
  (* running the already-optimized object through compile again is not
     possible (no decompiler); instead check the item-level fixed point:
     an optimized function's text contains no push/pop window *)
  let _, opt = both "int main() { int a; a = 1 + 2 + 3 + 4 + 5; return a; }" in
  let instrs = Svm.Encode.disassemble opt.Sof.Object_file.text in
  let rec windows = function
    | Svm.Isa.Addi (s1, _, m) :: Svm.Isa.St (s2, _, _) :: Svm.Isa.Ld (_, s3, _)
      :: Svm.Isa.Addi (s4, _, p) :: _
      when s1 = Svm.Isa.reg_sp && s2 = Svm.Isa.reg_sp && s3 = Svm.Isa.reg_sp
           && s4 = Svm.Isa.reg_sp && m = -4l && p = 4l ->
        true
    | _ :: rest -> windows rest
    | [] -> false
  in
  Alcotest.(check bool) "no residual push/pop windows" false (windows instrs)

let () =
  Alcotest.run "peephole"
    [
      ( "semantics",
        [
          Alcotest.test_case "basics" `Quick test_semantics_preserved_basics;
          Alcotest.test_case "generated" `Quick test_semantics_preserved_random;
        ] );
      ( "size",
        [
          Alcotest.test_case "text shrinks" `Quick test_text_shrinks;
          Alcotest.test_case "codegen ratio vs paper" `Quick test_codegen_size_ratio_matches_paper;
          Alcotest.test_case "no residual windows" `Quick test_optimizer_is_idempotent_on_straightline;
        ] );
    ]
