(* Tests of the placement constraint system and the DeltaBlue solver. *)

open Constraints

(* -- placement --------------------------------------------------------- *)

let test_reserve_and_conflict () =
  let a = Placement.create () in
  (match Placement.reserve a ~lo:0x10000 ~size:0x2000 "libc" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first reserve should succeed");
  match Placement.reserve a ~lo:0x11000 ~size:0x1000 "libm" with
  | Error owner -> Alcotest.(check string) "conflict owner" "libc" owner
  | Ok () -> Alcotest.fail "overlap not detected"

let test_release () =
  let a = Placement.create () in
  ignore (Placement.reserve a ~lo:0x10000 ~size:0x1000 "x");
  Placement.release a ~lo:0x10000;
  Alcotest.(check bool) "free again" true (Placement.free a ~lo:0x10000 ~hi:0x11000)

let test_place_default_first_fit () =
  let a = Placement.create ~region_lo:0x1000 () in
  let d1 = Placement.place a ~size:0x800 ~owner:"a" () in
  let d2 = Placement.place a ~size:0x800 ~owner:"b" () in
  Alcotest.(check int) "first at region start" 0x1000 d1.Placement.base;
  Alcotest.(check bool) "no overlap" true (d2.Placement.base >= d1.Placement.base + 0x1000)

let test_place_at_pref () =
  let a = Placement.create () in
  let d = Placement.place a ~size:0x1000 ~owner:"libc"
      ~prefs:[ (10, Placement.At 0x100000) ] ()
  in
  Alcotest.(check int) "exact" 0x100000 d.Placement.base;
  Alcotest.(check bool) "pref honoured" true (d.Placement.satisfied = Some (Placement.At 0x100000))

let test_place_at_conflicting_falls_through () =
  let a = Placement.create () in
  ignore (Placement.reserve a ~lo:0x100000 ~size:0x1000 "other");
  let d = Placement.place a ~size:0x1000 ~owner:"libc"
      ~prefs:[ (10, Placement.At 0x100000); (5, Placement.Near 0x100000) ] ()
  in
  Alcotest.(check bool) "not the occupied base" true (d.Placement.base <> 0x100000);
  Alcotest.(check bool) "fell through to Near" true
    (d.Placement.satisfied = Some (Placement.Near 0x100000))

let test_place_near_picks_closest () =
  let a = Placement.create () in
  ignore (Placement.reserve a ~lo:0x200000 ~size:0x3000 "wall");
  let d = Placement.place a ~size:0x1000 ~owner:"x"
      ~prefs:[ (1, Placement.Near 0x200000) ] ()
  in
  (* closest free page-aligned base to 0x200000 is 0x1FF000 (below) or
     0x203000 (above); below is closer *)
  Alcotest.(check int) "closest" 0x1FF000 d.Placement.base

let test_place_within () =
  let a = Placement.create () in
  let d = Placement.place a ~size:0x1000 ~owner:"x"
      ~prefs:[ (1, Placement.Within (0x300000, 0x310000)) ] ()
  in
  Alcotest.(check bool) "inside" true
    (d.Placement.base >= 0x300000 && d.Placement.base + 0x1000 <= 0x310000)

let test_place_avoid () =
  let a = Placement.create ~region_lo:0x1000 ~region_hi:0x10000 () in
  let d = Placement.place a ~size:0x1000 ~owner:"x"
      ~prefs:[ (1, Placement.Avoid (0x1000, 0x8000)) ] ()
  in
  Alcotest.(check bool) "avoided" true
    (d.Placement.base + 0x1000 <= 0x1000 || d.Placement.base >= 0x8000)

let test_place_reuse () =
  let a = Placement.create () in
  let d1 = Placement.place a ~size:0x1000 ~owner:"libc" () in
  (* same library requested again: reuse is the strong constraint *)
  let d2 = Placement.place a ~size:0x1000 ~owner:"libc" ~existing:d1.Placement.base () in
  Alcotest.(check bool) "reused" true d2.Placement.reused;
  Alcotest.(check int) "same base" d1.Placement.base d2.Placement.base

let test_place_reuse_denied_on_conflict () =
  let a = Placement.create () in
  ignore (Placement.reserve a ~lo:0x50000 ~size:0x2000 "app");
  let d = Placement.place a ~size:0x1000 ~owner:"libc" ~existing:0x50000 () in
  Alcotest.(check bool) "not reused" false d.Placement.reused;
  Alcotest.(check bool) "moved" true (d.Placement.base <> 0x50000)

let test_no_space () =
  let a = Placement.create ~region_lo:0x1000 ~region_hi:0x3000 () in
  ignore (Placement.place a ~size:0x2000 ~owner:"big" ());
  try
    ignore (Placement.place a ~size:0x1000 ~owner:"more" ());
    Alcotest.fail "expected No_space"
  with Placement.No_space _ -> ()

let test_alignment () =
  let a = Placement.create ~align:0x1000 () in
  let d = Placement.place a ~size:10 ~owner:"tiny" ~prefs:[ (1, Placement.Near 0x12345) ] () in
  Alcotest.(check int) "page aligned" 0 (d.Placement.base mod 0x1000)

let prop_no_overlaps =
  QCheck.Test.make ~count:100 ~name:"placements never overlap"
    QCheck.(list_of_size (Gen.int_range 1 20) (QCheck.int_range 1 0x4000))
    (fun sizes ->
      let a = Placement.create () in
      List.iteri (fun i size ->
          ignore (Placement.place a ~size ~owner:(string_of_int i) ()))
        sizes;
      let ivs = List.sort compare (Placement.intervals a) in
      let rec ok = function
        | (_, hi1, _) :: ((lo2, _, _) as b) :: rest -> hi1 <= lo2 && ok (b :: rest)
        | _ -> true
      in
      ok ivs)

(* -- deltablue --------------------------------------------------------- *)

let test_chain () =
  (* value edited at head must propagate to tail through required chain *)
  Alcotest.(check int) "chain propagates" 100 (Deltablue.chain_test 50)

let test_projection () =
  Alcotest.(check bool) "projection consistent" true (Deltablue.projection_test 30)

let test_stay_holds () =
  let p = Deltablue.create () in
  let v = Deltablue.variable "v" 3 in
  ignore (Deltablue.add_constraint p ~strength:Deltablue.strong_default (Deltablue.Stay v));
  Alcotest.(check int) "stays" 3 v.Deltablue.value

let test_equal_propagates_on_add () =
  let p = Deltablue.create () in
  let a = Deltablue.variable "a" 10 in
  let b = Deltablue.variable "b" 0 in
  ignore (Deltablue.add_constraint p ~strength:Deltablue.normal (Deltablue.Stay a));
  ignore (Deltablue.add_constraint p ~strength:Deltablue.required (Deltablue.Equal (a, b)));
  Alcotest.(check int) "b := a" 10 b.Deltablue.value

let test_edit_beats_weak_stay () =
  let p = Deltablue.create () in
  let a = Deltablue.variable "a" 1 in
  let b = Deltablue.variable "b" 2 in
  ignore (Deltablue.add_constraint p ~strength:Deltablue.weak_default (Deltablue.Stay b));
  ignore (Deltablue.add_constraint p ~strength:Deltablue.required (Deltablue.Equal (a, b)));
  let e = Deltablue.add_constraint p ~strength:Deltablue.preferred (Deltablue.Edit a) in
  let plan = Deltablue.extract_plan_from_edits p in
  a.Deltablue.value <- 42;
  Deltablue.execute_plan plan;
  Alcotest.(check int) "b follows edit" 42 b.Deltablue.value;
  Deltablue.remove_constraint p e

let test_scale_backward () =
  let p = Deltablue.create () in
  let src = Deltablue.variable "src" 0 in
  let dst = Deltablue.variable "dst" 0 in
  let scale = Deltablue.variable "scale" 10 in
  let offset = Deltablue.variable "offset" 1000 in
  ignore (Deltablue.add_constraint p ~strength:Deltablue.normal (Deltablue.Stay src));
  ignore
    (Deltablue.add_constraint p ~strength:Deltablue.required
       (Deltablue.Scale (src, scale, offset, dst)));
  (* editing dst forces the backward method: src := (dst-offset)/scale *)
  let e = Deltablue.add_constraint p ~strength:Deltablue.preferred (Deltablue.Edit dst) in
  let plan = Deltablue.extract_plan_from_edits p in
  dst.Deltablue.value <- 1100;
  Deltablue.execute_plan plan;
  Alcotest.(check int) "src derived" 10 src.Deltablue.value;
  Deltablue.remove_constraint p e

let test_remove_restores () =
  let p = Deltablue.create () in
  let a = Deltablue.variable "a" 1 in
  let b = Deltablue.variable "b" 2 in
  ignore (Deltablue.add_constraint p ~strength:Deltablue.weak_default (Deltablue.Stay b));
  let eq = Deltablue.add_constraint p ~strength:Deltablue.required (Deltablue.Equal (a, b)) in
  Deltablue.remove_constraint p eq;
  (* after removal b is free again: the weak stay re-satisfies *)
  Alcotest.(check bool) "b determined by stay again" true
    (match b.Deltablue.determined_by with
    | Some c -> (match c.Deltablue.kind with Deltablue.Stay _ -> true | _ -> false)
    | None -> false)

let test_required_conflict_raises () =
  let p = Deltablue.create () in
  let a = Deltablue.variable "a" 1 in
  ignore (Deltablue.add_constraint p ~strength:Deltablue.required (Deltablue.Edit a));
  try
    (* a second required edit of the same variable cannot be satisfied *)
    ignore (Deltablue.add_constraint p ~strength:Deltablue.required (Deltablue.Edit a));
    Alcotest.fail "expected Unsatisfiable_required"
  with Deltablue.Unsatisfiable_required -> ()

(* -- db_layout: DeltaBlue-backed incremental layout ------------------- *)

let mk_layout () =
  Constraints.Db_layout.create ~base:0x100000
    [ ("libc", 0x40000); ("libm", 0x8000); ("libal1", 0x10000); ("libal2", 0x10000) ]

let test_db_layout_initial () =
  let l = mk_layout () in
  Alcotest.(check int) "libc" 0x100000 (Constraints.Db_layout.base_of l "libc");
  Alcotest.(check int) "libm" 0x140000 (Constraints.Db_layout.base_of l "libm");
  Alcotest.(check int) "libal1" 0x148000 (Constraints.Db_layout.base_of l "libal1");
  Alcotest.(check int) "libal2" 0x158000 (Constraints.Db_layout.base_of l "libal2");
  Alcotest.(check bool) "packed" true (Constraints.Db_layout.packed l)

let test_db_layout_move () =
  let l = mk_layout () in
  Constraints.Db_layout.move l 0x200000;
  Alcotest.(check int) "libc moved" 0x200000 (Constraints.Db_layout.base_of l "libc");
  Alcotest.(check int) "libal2 follows" 0x258000 (Constraints.Db_layout.base_of l "libal2");
  Alcotest.(check bool) "still packed" true (Constraints.Db_layout.packed l)

let test_db_layout_resize () =
  let l = mk_layout () in
  (* libc grows by one page: everything after shifts, libc stays *)
  Constraints.Db_layout.resize l "libc" 0x41000;
  Alcotest.(check int) "libc unmoved" 0x100000 (Constraints.Db_layout.base_of l "libc");
  Alcotest.(check int) "libm shifted" 0x141000 (Constraints.Db_layout.base_of l "libm");
  Alcotest.(check int) "libal2 shifted" 0x159000 (Constraints.Db_layout.base_of l "libal2");
  Alcotest.(check bool) "packed after resize" true (Constraints.Db_layout.packed l);
  (* middle member resize leaves predecessors alone *)
  Constraints.Db_layout.resize l "libal1" 0x20000;
  Alcotest.(check int) "libm untouched" 0x141000 (Constraints.Db_layout.base_of l "libm");
  Alcotest.(check int) "libal2 reshifted" 0x169000 (Constraints.Db_layout.base_of l "libal2")

let test_db_layout_unknown () =
  let l = mk_layout () in
  try
    ignore (Constraints.Db_layout.base_of l "nope");
    Alcotest.fail "expected Unknown_member"
  with Constraints.Db_layout.Unknown_member _ -> ()

let prop_db_layout_always_packed =
  QCheck.Test.make ~count:50 ~name:"db layout stays packed under random edits"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) (QCheck.int_range 0 3))
    (fun ops ->
      let l = mk_layout () in
      List.iteri
        (fun i op ->
          match op with
          | 0 -> Constraints.Db_layout.move l (0x100000 + (i * 0x1000))
          | 1 -> Constraints.Db_layout.resize l "libc" (0x40000 + (i * 0x100))
          | 2 -> Constraints.Db_layout.resize l "libm" (0x8000 + (i * 0x200))
          | _ -> Constraints.Db_layout.resize l "libal1" (0x10000 + (i * 0x80)))
        ops;
      Constraints.Db_layout.packed l)

let prop_chain_any_length =
  QCheck.Test.make ~count:30 ~name:"chain test for arbitrary lengths"
    (QCheck.int_range 1 200)
    (fun n -> Deltablue.chain_test n = 100)

let () =
  Alcotest.run "constraints"
    [
      ( "placement",
        [
          Alcotest.test_case "reserve/conflict" `Quick test_reserve_and_conflict;
          Alcotest.test_case "release" `Quick test_release;
          Alcotest.test_case "first fit" `Quick test_place_default_first_fit;
          Alcotest.test_case "At pref" `Quick test_place_at_pref;
          Alcotest.test_case "At conflict falls through" `Quick test_place_at_conflicting_falls_through;
          Alcotest.test_case "Near closest" `Quick test_place_near_picks_closest;
          Alcotest.test_case "Within" `Quick test_place_within;
          Alcotest.test_case "Avoid" `Quick test_place_avoid;
          Alcotest.test_case "reuse" `Quick test_place_reuse;
          Alcotest.test_case "reuse denied on conflict" `Quick test_place_reuse_denied_on_conflict;
          Alcotest.test_case "no space" `Quick test_no_space;
          Alcotest.test_case "alignment" `Quick test_alignment;
        ] );
      ( "deltablue",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "stay" `Quick test_stay_holds;
          Alcotest.test_case "equal propagates" `Quick test_equal_propagates_on_add;
          Alcotest.test_case "edit beats weak stay" `Quick test_edit_beats_weak_stay;
          Alcotest.test_case "scale backward" `Quick test_scale_backward;
          Alcotest.test_case "remove restores" `Quick test_remove_restores;
          Alcotest.test_case "required conflict" `Quick test_required_conflict_raises;
        ] );
      ( "db_layout",
        [
          Alcotest.test_case "initial packing" `Quick test_db_layout_initial;
          Alcotest.test_case "move" `Quick test_db_layout_move;
          Alcotest.test_case "resize" `Quick test_db_layout_resize;
          Alcotest.test_case "unknown member" `Quick test_db_layout_unknown;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_no_overlaps; prop_chain_any_length; prop_db_layout_always_packed ] );
    ]
