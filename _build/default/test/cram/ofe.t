The Object File Editor end to end: compile minic source, inspect it,
apply module operators, convert between object formats.

  $ cat > hello.c <<'EOF'
  > char greeting[] = "hello, omos";
  > int secret = 17;
  > static int internal(int x) { return x * 2; }
  > int visible(int x) { return internal(x) + secret; }
  > EOF

  $ ofe compile hello.c hello.sof
  wrote hello.sof

size and strings behave like their Unix namesakes:

  $ ofe size hello.sof
     text	   data	    bss	    dec	    hex	filename
      384	     16	      0	    400	    190	hello.sof

  $ ofe strings hello.sof
  hello, omos

nm shows bindings (lowercase = local) and kinds:

  $ ofe nm hello.sof
  00000000 D greeting
  00000000 t internal
  0000000c D secret
  000000a8 T visible

exports and undefined references:

  $ ofe exports hello.sof
  visible
  greeting
  secret

  $ ofe undefined hello.sof

module operators produce new objects; rename with a group template:

  $ ofe rename '^\(.*\)$' 'pkg_\1' hello.sof renamed.sof
  wrote renamed.sof

  $ ofe exports renamed.sof
  pkg_visible
  pkg_greeting
  pkg_secret

hide removes an export but keeps the code reachable through a mangled
private alias (the freeze mechanism — unique, link-time-only names):

  $ ofe hide '^visible$' hello.sof hidden.sof
  wrote hidden.sof

  $ ofe exports hidden.sof
  visible$hid1
  greeting
  secret

format conversion through the BFD-style switch:

  $ ofe convert aout hello.sof hello.aout
  wrote hello.aout (aout format)

  $ ofe exports hello.aout
  visible
  greeting
  secret

errors are reported, not crashed on:

  $ ofe info /dev/null
  ofe: unrecognized object file magic
  [1]

  $ cat > broken.c <<'EOF'
  > int f( { return 1; }
  > EOF
  $ ofe compile broken.c broken.sof
  ofe: parse error (line 1): expected int, got {
  [1]
