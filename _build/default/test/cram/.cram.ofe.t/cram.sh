  $ cat > hello.c <<'EOF'
  > char greeting[] = "hello, omos";
  > int secret = 17;
  > static int internal(int x) { return x * 2; }
  > int visible(int x) { return internal(x) + secret; }
  > EOF
  $ ofe compile hello.c hello.sof
  $ ofe size hello.sof
  $ ofe strings hello.sof
  $ ofe nm hello.sof
  $ ofe exports hello.sof
  $ ofe undefined hello.sof
  $ ofe rename '^\(.*\)$' 'pkg_\1' hello.sof renamed.sof
  $ ofe exports renamed.sof
  $ ofe hide '^visible$' hello.sof hidden.sof
  $ ofe exports hidden.sof
  $ ofe convert aout hello.sof hello.aout
  $ ofe exports hello.aout
  $ ofe info /dev/null
  $ cat > broken.c <<'EOF'
  > int f( { return 1; }
  > EOF
  $ ofe compile broken.c broken.sof
