  $ omos_demo run --scheme static ls /data/one | head -1
  $ omos_demo run --scheme dynamic ls /data/one | head -1
  $ omos_demo run --scheme omos ls /data/one | head -1
  $ omos_demo run --scheme partial ls /data/one | head -1
  $ omos_demo run --scheme omos -- ls -laF /data/many 2>/dev/null | head -4
  $ omos_demo run --scheme omos-integrated --personality mach codegen | head -1
  $ omos_demo ns
  $ omos_demo run nosuch 2>&1 | head -1
