test/test_paper_claims.mli:
