test/test_linker.ml: Alcotest Int32 Linker List Option Printf QCheck QCheck_alcotest Sof Svm
