test/test_minic.ml: Alcotest Astring Buffer Int32 Linker List Minic Printf QCheck QCheck_alcotest Sof Str String Svm
