test/test_simos.ml: Alcotest Bytes Int32 Linker Simos Sof Svm
