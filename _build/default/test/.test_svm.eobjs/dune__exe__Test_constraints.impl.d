test/test_constraints.ml: Alcotest Constraints Deltablue Gen List Placement QCheck QCheck_alcotest
