test/test_differential.ml: Alcotest Buffer Lazy Linker List Minic Omos Printf QCheck QCheck_alcotest Simos String Workloads
