test/test_omos.mli:
