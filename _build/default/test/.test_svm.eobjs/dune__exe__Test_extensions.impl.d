test/test_extensions.ml: Alcotest Astring Blueprint Bytes Linker List Minic Omos Printf QCheck QCheck_alcotest Simos Sof Svm Workloads
