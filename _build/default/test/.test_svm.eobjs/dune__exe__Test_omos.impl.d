test/test_omos.ml: Alcotest Blueprint Bytes Constraints Jigsaw Linker List Minic Omos Option Printf Simos Sof String Svm Workloads
