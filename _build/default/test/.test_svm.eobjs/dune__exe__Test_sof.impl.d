test/test_sof.ml: Alcotest Bytes Gen List Option QCheck QCheck_alcotest Sof Svm
