test/test_svm.ml: Alcotest Bytes Cpu Disasm Encode Gen Int32 Isa List Printf QCheck QCheck_alcotest Svm
