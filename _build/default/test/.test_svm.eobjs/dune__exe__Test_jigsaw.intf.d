test/test_jigsaw.mli:
