test/test_coverage.ml: Alcotest Array Blueprint Bytes Int32 Jigsaw Linker List Minic Omos Option Printf QCheck QCheck_alcotest Simos Sof String Svm Workloads
