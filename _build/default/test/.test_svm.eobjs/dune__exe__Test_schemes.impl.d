test/test_schemes.ml: Alcotest Hashtbl List Omos Printf Simos Workloads
