test/test_peephole.ml: Alcotest Buffer Bytes Linker List Minic Printf Simos Sof Svm Workloads
