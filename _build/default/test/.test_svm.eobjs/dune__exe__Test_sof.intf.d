test/test_sof.mli:
