test/test_paper_claims.ml: Alcotest Blueprint Buffer Linker List Minic Omos Option Printf Simos Sof Workloads
