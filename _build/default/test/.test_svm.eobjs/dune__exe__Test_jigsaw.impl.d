test/test_jigsaw.ml: Alcotest Jigsaw Linker List QCheck QCheck_alcotest Sof Svm
