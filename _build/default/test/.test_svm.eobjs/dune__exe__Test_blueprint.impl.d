test/test_blueprint.ml: Alcotest Blueprint Constraints Hashtbl Jigsaw List Sof Str Svm
