test/test_interp.ml: Alcotest Astring Bytes List Omos Printf Simos Workloads
