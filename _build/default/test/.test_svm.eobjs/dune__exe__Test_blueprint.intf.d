test/test_blueprint.mli:
