test/test_workloads.ml: Alcotest Astring Bytes Jigsaw List Minic Omos Simos Sof Workloads
