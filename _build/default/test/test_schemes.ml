(* Tests of the shared-library schemes: behavioural equivalence across
   all four, lazy-binding mechanics, dispatch-table accounting, memory
   sharing, and the performance shapes the paper's Table 1 depends on. *)

let all_schemes (w : Omos.World.t) ~name ~client ~libs =
  [
    Omos.Schemes.static_program w.Omos.World.rt ~name ~client ~libs;
    Omos.Schemes.dynamic_program w.Omos.World.rt ~name ~client ~libs;
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name ~client ~libs ();
    Omos.Schemes.self_contained_program w.Omos.World.rt ~style:Omos.Schemes.Integrated
      ~name ~client ~libs ();
    Omos.Schemes.partial_image_program w.Omos.World.rt ~name ~client ~libs;
  ]

(* -- behavioural equivalence ----------------------------------------------- *)

let test_ls_equivalent_across_schemes () =
  let w = Omos.World.create ~many_entries:5 () in
  let progs = all_schemes w ~name:"ls" ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs in
  List.iter
    (fun args ->
      let results =
        List.map (fun p -> Omos.Schemes.invoke w.Omos.World.rt p ~args) progs
      in
      match results with
      | ((c0, o0) as r0) :: rest ->
          ignore r0;
          List.iteri
            (fun i (c, o) ->
              Alcotest.(check int) (Printf.sprintf "exit[%d]" i) c0 c;
              Alcotest.(check string) (Printf.sprintf "out[%d]" i) o0 o)
            rest
      | [] -> assert false)
    [ Omos.World.ls_single_args;
      [ "ls"; "-a"; Workloads.Dataset.dir_many ];
      Omos.World.ls_laf_args ]

let test_codegen_equivalent_across_schemes () =
  let w = Omos.World.create () in
  let progs =
    all_schemes w ~name:"codegen" ~client:(Omos.World.codegen_client w)
      ~libs:Omos.World.codegen_libs
  in
  let results =
    List.map (fun p -> Omos.Schemes.invoke w.Omos.World.rt p ~args:Omos.World.codegen_args) progs
  in
  match results with
  | (c0, o0) :: rest ->
      Alcotest.(check int) "exit 0" 0 c0;
      List.iteri
        (fun i (c, o) ->
          Alcotest.(check int) (Printf.sprintf "exit[%d]" i) c0 c;
          Alcotest.(check string) (Printf.sprintf "out[%d]" i) o0 o)
        rest
  | [] -> assert false

(* -- dispatch machinery ------------------------------------------------------ *)

let test_dispatch_accounting () =
  let w = Omos.World.create () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let stat = Omos.Schemes.static_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let dyn = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let sc = Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls" ~client ~libs () in
  let pi = Omos.Schemes.partial_image_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  Alcotest.(check int) "static: none" 0 stat.Omos.Schemes.dispatch_bytes;
  Alcotest.(check int) "self-contained: none" 0 sc.Omos.Schemes.dispatch_bytes;
  Alcotest.(check bool) "dynamic: tables" true (dyn.Omos.Schemes.dispatch_bytes > 0);
  Alcotest.(check bool) "partial: tables" true (pi.Omos.Schemes.dispatch_bytes > 0);
  Alcotest.(check bool) "imports found" true (dyn.Omos.Schemes.imports >= 8);
  Alcotest.(check bool) "eager relocs counted" true (dyn.Omos.Schemes.eager_relocs > 20)

let test_lazy_binding_counts () =
  (* -laF calls more distinct libc routines, so the dynamic scheme
     performs more lazy binds per invocation — the paper's explanation
     for HP-UX's growing user time *)
  let w = Omos.World.create () in
  let dyn =
    Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let binds args =
    let p = dyn.Omos.Schemes.launch ~args in
    let code = Simos.Kernel.run w.Omos.World.kernel p () in
    Alcotest.(check bool) "ran" true (code = 0);
    let st = Hashtbl.find w.Omos.World.rt.Omos.Schemes.table p.Simos.Proc.pid in
    Hashtbl.remove w.Omos.World.rt.Omos.Schemes.table p.Simos.Proc.pid;
    Simos.Kernel.reap w.Omos.World.kernel p;
    st.Omos.Schemes.binds
  in
  let plain = binds Omos.World.ls_single_args in
  let laf = binds Omos.World.ls_laf_args in
  Alcotest.(check bool) "some binds" true (plain > 0);
  Alcotest.(check bool) "laF binds more" true (laf > plain)

let test_partial_image_lazy_library_mapping () =
  (* the library must not be mapped before the first stub fires *)
  let w = Omos.World.create () in
  let pi =
    Omos.Schemes.partial_image_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let p = pi.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let regions_before = List.length (Simos.Addr_space.regions p.Simos.Proc.aspace) in
  let st = Hashtbl.find w.Omos.World.rt.Omos.Schemes.table p.Simos.Proc.pid in
  Alcotest.(check bool) "not yet mapped" false st.Omos.Schemes.libs_mapped;
  let code = Simos.Kernel.run w.Omos.World.kernel p () in
  Alcotest.(check int) "ran" 0 code;
  Alcotest.(check bool) "mapped on demand" true st.Omos.Schemes.libs_mapped;
  Alcotest.(check bool) "more regions after" true
    (List.length (Simos.Addr_space.regions p.Simos.Proc.aspace) > regions_before);
  Simos.Kernel.reap w.Omos.World.kernel p

(* -- sharing -------------------------------------------------------------------- *)

let test_self_contained_text_sharing () =
  (* two concurrent clients of the same library share its text frames *)
  let w = Omos.World.create () in
  let sc =
    Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs ()
  in
  let p1 = sc.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  let p2 = sc.Omos.Schemes.launch ~args:Omos.World.ls_single_args in
  Alcotest.(check bool) "pages saved by sharing" true
    (Simos.Phys.saved_pages w.Omos.World.kernel.Simos.Kernel.phys > 10);
  ignore (Simos.Kernel.run w.Omos.World.kernel p1 ());
  ignore (Simos.Kernel.run w.Omos.World.kernel p2 ());
  Simos.Kernel.reap w.Omos.World.kernel p1;
  Simos.Kernel.reap w.Omos.World.kernel p2

(* -- performance shapes (Table 1 pre-checks) -------------------------------------- *)

(* invoke n times and return total elapsed simulated time *)
let time_invocations (w : Omos.World.t) prog ~args n =
  let snap = Simos.Clock.snapshot w.Omos.World.kernel.Simos.Kernel.clock in
  for _ = 1 to n do
    let code, _ = Omos.Schemes.invoke w.Omos.World.rt prog ~args in
    if code <> 0 then Alcotest.fail "nonzero exit"
  done;
  let _, _, e = Simos.Clock.since w.Omos.World.kernel.Simos.Kernel.clock snap in
  e

let test_codegen_omos_beats_dynamic () =
  (* Table 1c's shape: on the relocation-heavy program, OMOS
     self-contained wins clearly *)
  let w = Omos.World.create () in
  let client = Omos.World.codegen_client w and libs = Omos.World.codegen_libs in
  let dyn = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"codegen" ~client ~libs in
  let sc = Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"codegen" ~client ~libs () in
  (* warm both *)
  ignore (time_invocations w dyn ~args:Omos.World.codegen_args 1);
  ignore (time_invocations w sc ~args:Omos.World.codegen_args 1);
  let td = time_invocations w dyn ~args:Omos.World.codegen_args 5 in
  let ts = time_invocations w sc ~args:Omos.World.codegen_args 5 in
  Alcotest.(check bool)
    (Printf.sprintf "omos (%.0f) < dynamic (%.0f)" ts td)
    true (ts < td)

let test_ls_small_roughly_par () =
  (* Table 1a's shape: for tiny ls the two schemes are comparable —
     OMOS within ~25% either way *)
  let w = Omos.World.create () in
  let client = Omos.World.ls_client w and libs = Omos.World.ls_libs in
  let dyn = Omos.Schemes.dynamic_program w.Omos.World.rt ~name:"ls" ~client ~libs in
  let sc = Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"ls" ~client ~libs () in
  ignore (time_invocations w dyn ~args:Omos.World.ls_single_args 1);
  ignore (time_invocations w sc ~args:Omos.World.ls_single_args 1);
  let td = time_invocations w dyn ~args:Omos.World.ls_single_args 10 in
  let ts = time_invocations w sc ~args:Omos.World.ls_single_args 10 in
  let ratio = ts /. td in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [0.6,1.25]" ratio)
    true
    (ratio > 0.6 && ratio < 1.25)

let test_static_install_pays_write_io () =
  (* §2.1: static linking's dominant cost is writing the huge binary *)
  let w = Omos.World.create () in
  let k = w.Omos.World.kernel in
  let io_before = k.Simos.Kernel.clock.Simos.Clock.io in
  ignore
    (Omos.Schemes.static_program w.Omos.World.rt ~name:"codegen"
       ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs);
  let static_io = k.Simos.Kernel.clock.Simos.Clock.io -. io_before in
  let io_before2 = k.Simos.Kernel.clock.Simos.Clock.io in
  ignore
    (Omos.Schemes.self_contained_program w.Omos.World.rt ~name:"codegen"
       ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs ());
  let sc_io = k.Simos.Kernel.clock.Simos.Clock.io -. io_before2 in
  Alcotest.(check bool) "static writes big binary" true (static_io > 100_000.0);
  Alcotest.(check bool) "omos writes nothing" true (sc_io < static_io /. 10.0)

let () =
  Alcotest.run "schemes"
    [
      ( "equivalence",
        [
          Alcotest.test_case "ls all schemes" `Quick test_ls_equivalent_across_schemes;
          Alcotest.test_case "codegen all schemes" `Quick test_codegen_equivalent_across_schemes;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "dispatch accounting" `Quick test_dispatch_accounting;
          Alcotest.test_case "lazy binding counts" `Quick test_lazy_binding_counts;
          Alcotest.test_case "partial image lazy map" `Quick test_partial_image_lazy_library_mapping;
        ] );
      ("sharing", [ Alcotest.test_case "text frames shared" `Quick test_self_contained_text_sharing ]);
      ( "shapes",
        [
          Alcotest.test_case "codegen: omos wins" `Quick test_codegen_omos_beats_dynamic;
          Alcotest.test_case "small ls: parity" `Quick test_ls_small_roughly_par;
          Alcotest.test_case "static link io" `Quick test_static_install_pays_write_io;
        ] );
    ]
