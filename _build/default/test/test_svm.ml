(* Tests of the SVM virtual machine: encoding round-trips, interpreter
   semantics, and the call/stack conventions the compiler relies on. *)

open Svm

let i32 = Alcotest.int32
let reg r = r

(* -- encode/decode ----------------------------------------------------- *)

let all_sample_instrs : Isa.instr list =
  [
    Isa.Halt; Isa.Nop; Isa.Movi (3, 42l); Isa.Mov (1, 2);
    Isa.Add (1, 2, 3); Isa.Sub (4, 5, 6); Isa.Mul (7, 8, 9);
    Isa.Div (1, 2, 3); Isa.Mod (1, 2, 3); Isa.And_ (1, 2, 3);
    Isa.Or_ (1, 2, 3); Isa.Xor (1, 2, 3); Isa.Shl (1, 2, 3);
    Isa.Shr (1, 2, 3); Isa.Addi (1, 2, -7l); Isa.Cmpeq (1, 2, 3);
    Isa.Cmplt (1, 2, 3); Isa.Cmple (1, 2, 3); Isa.Ld (1, 2, 100l);
    Isa.St (2, 3, -4l); Isa.Ldb (1, 2, 0l); Isa.Stb (2, 3, 1l);
    Isa.Lea (5, 0x1234l); Isa.Jmp 0x4000l; Isa.Jz (1, 16l);
    Isa.Jnz (2, -24l); Isa.Call 0x5000l; Isa.Callr 3; Isa.Jmpr 4;
    Isa.Ret; Isa.Sys 7l;
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      let b = Encode.encode i in
      Alcotest.(check int) "width" Isa.width (Bytes.length b);
      let i' = Encode.decode b in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Disasm.instr_to_string i))
        true (i = i'))
    all_sample_instrs

let test_assemble_disassemble () =
  let code = Encode.assemble all_sample_instrs in
  let back = Encode.disassemble code in
  Alcotest.(check int) "count" (List.length all_sample_instrs) (List.length back);
  Alcotest.(check bool) "equal" true (all_sample_instrs = back)

let test_bad_opcode () =
  let b = Bytes.make 8 '\255' in
  Alcotest.check_raises "bad opcode"
    (Encode.Bad_instruction "bad opcode 255")
    (fun () -> ignore (Encode.decode b))

let test_bad_register () =
  Alcotest.check_raises "bad register"
    (Encode.Bad_instruction "bad register r99")
    (fun () -> ignore (Encode.encode (Isa.Mov (99, 0))))

let test_truncated () =
  Alcotest.check_raises "truncated"
    (Encode.Bad_instruction "truncated instruction")
    (fun () -> ignore (Encode.decode (Bytes.create 4)))

(* -- interpreter ------------------------------------------------------- *)

(* Run [instrs] placed at address 0 in a fresh 64 KB flat memory. *)
let run_program ?(fuel = 10_000) ?sys instrs =
  let mem, buf = Cpu.flat_mem 0x10000 in
  let code = Encode.assemble instrs in
  Bytes.blit code 0 buf 0 (Bytes.length code);
  let cpu = Cpu.create ?sys mem in
  Cpu.set_reg cpu Isa.reg_sp 0xFF00l;
  let outcome = Cpu.run ~fuel cpu in
  (cpu, outcome)

let test_arith () =
  let cpu, outcome =
    run_program
      [
        Isa.Movi (1, 20l); Isa.Movi (2, 22l); Isa.Add (3, 1, 2);
        Isa.Sub (4, 3, 1); Isa.Mul (5, 1, 2); Isa.Div (6, 5, 2);
        Isa.Mod (7, 5, 1); Isa.Halt;
      ]
  in
  Alcotest.(check bool) "halted" true (outcome = Cpu.Halted);
  Alcotest.check i32 "add" 42l (Cpu.get_reg cpu 3);
  Alcotest.check i32 "sub" 22l (Cpu.get_reg cpu 4);
  Alcotest.check i32 "mul" 440l (Cpu.get_reg cpu 5);
  Alcotest.check i32 "div" 20l (Cpu.get_reg cpu 6);
  Alcotest.check i32 "mod" 0l (Cpu.get_reg cpu 7)

let test_compare_and_branch () =
  (* compute max(7, 12) via branch *)
  let cpu, _ =
    run_program
      [
        Isa.Movi (1, 7l); Isa.Movi (2, 12l); Isa.Cmplt (3, 1, 2);
        (* if r3 <> 0 jump over the next instruction *)
        Isa.Jnz (3, 8l); Isa.Mov (2, 1); Isa.Mov (0, 2); Isa.Halt;
      ]
  in
  Alcotest.check i32 "max" 12l (Cpu.get_reg cpu 0)

let test_memory_ops () =
  let cpu, _ =
    run_program
      [
        Isa.Movi (1, 0x8000l); Isa.Movi (2, 0x11223344l);
        Isa.St (1, 2, 0l); Isa.Ld (3, 1, 0l); Isa.Ldb (4, 1, 0l);
        Isa.Ldb (5, 1, 3l); Isa.Halt;
      ]
  in
  Alcotest.check i32 "word" 0x11223344l (Cpu.get_reg cpu 3);
  Alcotest.check i32 "byte lo" 0x44l (Cpu.get_reg cpu 4);
  Alcotest.check i32 "byte hi" 0x11l (Cpu.get_reg cpu 5)

let test_call_ret () =
  (* call a function at 0x100 which doubles r1 *)
  let mem, buf = Cpu.flat_mem 0x10000 in
  let main =
    Encode.assemble [ Isa.Movi (1, 21l); Isa.Call 0x100l; Isa.Halt ]
  in
  let f = Encode.assemble [ Isa.Add (1, 1, 1); Isa.Ret ] in
  Bytes.blit main 0 buf 0 (Bytes.length main);
  Bytes.blit f 0 buf 0x100 (Bytes.length f);
  let cpu = Cpu.create mem in
  ignore (Cpu.run ~fuel:100 cpu);
  Alcotest.check i32 "doubled" 42l (Cpu.get_reg cpu 1);
  Alcotest.(check bool) "halted" true (cpu.Cpu.outcome = Cpu.Halted)

let test_syscall () =
  let seen = ref [] in
  let sys (cpu : Cpu.t) n =
    seen := n :: !seen;
    if n = 0 then Cpu.Sys_exit (Int32.to_int (Cpu.get_reg cpu 1))
    else (
      Cpu.set_reg cpu 0 99l;
      Cpu.Sys_continue)
  in
  let cpu, outcome =
    run_program ~sys [ Isa.Sys 5l; Isa.Mov (2, 0); Isa.Movi (1, 3l); Isa.Sys 0l ]
  in
  Alcotest.(check bool) "exited 3" true (outcome = Cpu.Exited 3);
  Alcotest.(check (list int)) "syscalls" [ 0; 5 ] !seen;
  Alcotest.check i32 "sys result visible" 99l (Cpu.get_reg cpu 2)

let test_div_by_zero_traps () =
  Alcotest.check_raises "trap" (Cpu.Trap "division by zero") (fun () ->
      ignore (run_program [ Isa.Movi (1, 1l); Isa.Movi (2, 0l); Isa.Div (3, 1, 2) ]))

let test_unmapped_traps () =
  try
    ignore (run_program [ Isa.Movi (1, 0x7FFFFFFFl); Isa.Ld (2, 1, 0l) ]);
    Alcotest.fail "expected trap"
  with Cpu.Trap _ -> ()

let test_fuel_runs_out () =
  (* infinite loop: jmp 0 *)
  let _, outcome = run_program ~fuel:50 [ Isa.Jmp 0l ] in
  Alcotest.(check bool) "still running" true (outcome = Cpu.Running)

let test_instr_count () =
  let cpu, _ = run_program [ Isa.Nop; Isa.Nop; Isa.Nop; Isa.Halt ] in
  Alcotest.(check int) "count" 4 cpu.Cpu.instr_count

let test_shifts_mask () =
  let cpu, _ =
    run_program
      [
        Isa.Movi (1, 1l); Isa.Movi (2, 33l); (* shift amount masked to 1 *)
        Isa.Shl (3, 1, 2); Isa.Halt;
      ]
  in
  Alcotest.check i32 "shl masked" 2l (Cpu.get_reg cpu 3)

let test_read_cstring () =
  let mem, buf = Cpu.flat_mem 0x1000 in
  Bytes.blit_string "hello\000" 0 buf 0x800 6;
  let cpu = Cpu.create mem in
  Alcotest.(check string) "cstring" "hello" (Cpu.read_cstring cpu 0x800)

(* -- property tests ---------------------------------------------------- *)

let arb_instr =
  let open QCheck in
  let r = Gen.int_range 0 (Isa.nregs - 1) in
  let imm = Gen.map Int32.of_int (Gen.int_range (-1000000) 1000000) in
  let gen =
    Gen.oneof
      [
        Gen.return Isa.Halt;
        Gen.return Isa.Nop;
        Gen.return Isa.Ret;
        Gen.map2 (fun a b -> Isa.Movi (a, b)) r imm;
        Gen.map2 (fun a b -> Isa.Mov (a, b)) r r;
        Gen.map3 (fun a b c -> Isa.Add (a, b, c)) r r r;
        Gen.map3 (fun a b c -> Isa.Ld (a, b, c)) r r imm;
        Gen.map3 (fun a b c -> Isa.St (a, b, c)) r r imm;
        Gen.map (fun a -> Isa.Jmp a) imm;
        Gen.map2 (fun a b -> Isa.Jz (a, b)) r imm;
        Gen.map (fun a -> Isa.Call a) imm;
        Gen.map (fun a -> Isa.Sys a) imm;
      ]
  in
  make ~print:(fun i -> Disasm.instr_to_string i) gen

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip" arb_instr (fun i ->
      Encode.decode (Encode.encode i) = i)

let prop_opcode_range =
  QCheck.Test.make ~count:500 ~name:"opcode within range" arb_instr (fun i ->
      Isa.opcode i >= 0 && Isa.opcode i <= Isa.max_opcode)

let () =
  Alcotest.run "svm"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip all" `Quick test_roundtrip;
          Alcotest.test_case "assemble/disassemble" `Quick test_assemble_disassemble;
          Alcotest.test_case "bad opcode" `Quick test_bad_opcode;
          Alcotest.test_case "bad register" `Quick test_bad_register;
          Alcotest.test_case "truncated" `Quick test_truncated;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "compare+branch" `Quick test_compare_and_branch;
          Alcotest.test_case "memory" `Quick test_memory_ops;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "syscall" `Quick test_syscall;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_traps;
          Alcotest.test_case "unmapped access" `Quick test_unmapped_traps;
          Alcotest.test_case "fuel" `Quick test_fuel_runs_out;
          Alcotest.test_case "instr count" `Quick test_instr_count;
          Alcotest.test_case "shift masking" `Quick test_shifts_mask;
          Alcotest.test_case "read_cstring" `Quick test_read_cstring;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_opcode_range ] );
    ]

(* silence unused warnings for helpers *)
let _ = reg
