(* Differential testing: randomly generated minic programs must produce
   byte-identical output and exit codes under every shared-library
   scheme and launch path. This is the strongest correctness check in
   the suite — any relocation, stub, binding, placement, or paging bug
   that alters behaviour shows up as a scheme disagreement. *)

(* -- a tiny random program generator --------------------------------------- *)

(* Deterministic RNG (keep failures reproducible from the qcheck seed). *)
type rng = { mutable state : int }

let next (r : rng) (bound : int) : int =
  r.state <- ((r.state * 1103515245) + 12345) land 0x3FFFFFFF;
  r.state mod bound

(* Generate an expression over the in-scope variables. Depth-bounded;
   avoids division (trap risk) and keeps values well inside int32. *)
let rec gen_expr (r : rng) (vars : string list) (funcs : (string * int) list)
    (depth : int) : string =
  if depth <= 0 || next r 4 = 0 then
    match next r 4 with
    | 0 -> string_of_int (next r 100)
    | 1 when vars <> [] -> List.nth vars (next r (List.length vars))
    | 2 -> Printf.sprintf "ga[%d]" (next r 8)
    | _ -> string_of_int (next r 10)
  else
    match next r 6 with
    | 0 | 1 ->
        let op = List.nth [ "+"; "-"; "*"; "&"; "|"; "^" ] (next r 6) in
        Printf.sprintf "(%s %s %s)"
          (gen_expr r vars funcs (depth - 1))
          op
          (gen_expr r vars funcs (depth - 1))
    | 2 ->
        let op = List.nth [ "<"; "<="; "=="; "!=" ] (next r 4) in
        Printf.sprintf "(%s %s %s)"
          (gen_expr r vars funcs (depth - 1))
          op
          (gen_expr r vars funcs (depth - 1))
    | 3 when funcs <> [] ->
        let name, arity = List.nth funcs (next r (List.length funcs)) in
        let args = List.init arity (fun _ -> gen_expr r vars funcs (depth - 1)) in
        Printf.sprintf "%s(%s)" name (String.concat ", " args)
    | 4 ->
        (* libc calls keep the schemes' lazy binding busy *)
        Printf.sprintf "imax(%s, %s)"
          (gen_expr r vars funcs (depth - 1))
          (gen_expr r vars funcs (depth - 1))
    | _ -> Printf.sprintf "abs(%s)" (gen_expr r vars funcs (depth - 1))

(* [counters] are loop variables reserved for while loops: bodies never
   assign them, so every generated loop terminates *)
let rec gen_stmt (r : rng) (vars : string list) (counters : string list)
    (funcs : (string * int) list) (depth : int) : string =
  match next r 6 with
  | 0 when vars <> [] ->
      Printf.sprintf "%s = %s;"
        (List.nth vars (next r (List.length vars)))
        (gen_expr r vars funcs 3)
  | 1 when depth > 0 ->
      Printf.sprintf "if (%s) { %s } else { %s }" (gen_expr r vars funcs 2)
        (gen_stmt r vars counters funcs (depth - 1))
        (gen_stmt r vars counters funcs (depth - 1))
  | 2 when depth > 0 && counters <> [] ->
      (* bounded loop: a dedicated counter, strictly decreasing *)
      let v = List.hd counters in
      Printf.sprintf "%s = %d; while (%s > 0) { %s %s = %s - 1; }" v
        (next r 12) v
        (gen_stmt r vars (List.tl counters) funcs (depth - 1))
        v v
  | 3 ->
      if next r 2 = 0 then Printf.sprintf "putint(%s);" (gen_expr r vars funcs 2)
      else Printf.sprintf "ga[%d] = %s;" (next r 8) (gen_expr r vars funcs 2)
  | 4 -> Printf.sprintf "putstr(\"s%d \");" (next r 10)
  | _ when vars <> [] ->
      Printf.sprintf "%s = %s;"
        (List.nth vars (next r (List.length vars)))
        (gen_expr r vars funcs 3)
  | _ -> Printf.sprintf "putint(%s);" (gen_expr r vars funcs 2)

(* A whole program: a few helper functions + main using them and libc. *)
let gen_program (seed : int) : string =
  let r = { state = (seed * 2654435761) land 0x3FFFFFFF } in
  let buf = Buffer.create 512 in
  let nfuncs = 1 + next r 3 in
  let funcs = ref [] in
  for i = 0 to nfuncs - 1 do
    let arity = 1 + next r 2 in
    let params = List.init arity (fun j -> Printf.sprintf "p%d" j) in
    let name = Printf.sprintf "fn%d" i in
    Buffer.add_string buf
      (Printf.sprintf "int %s(%s) {\n" name
         (String.concat ", " (List.map (fun p -> "int " ^ p) params)));
    Buffer.add_string buf "  int t0;\n";
    let body_stmts = 1 + next r 3 in
    for _ = 1 to body_stmts do
      Buffer.add_string buf ("  " ^ gen_stmt r params [ "t0" ] !funcs 1 ^ "\n")
    done;
    Buffer.add_string buf (Printf.sprintf "  return %s;\n}\n" (gen_expr r params !funcs 3));
    funcs := (name, arity) :: !funcs
  done;
  Buffer.add_string buf
    "int g0; int g1; int ga[8];\nint main() {\n  int a; int b; int c; int t0; int t1;\n";
  Buffer.add_string buf "  a = 3; b = 17; c = 0; g0 = 5; g1 = 9;\n";
  let stmts = 3 + next r 5 in
  for _ = 1 to stmts do
    Buffer.add_string buf
      ("  " ^ gen_stmt r [ "a"; "b"; "c"; "g0"; "g1" ] [ "t0"; "t1" ] !funcs 2 ^ "\n")
  done;
  Buffer.add_string buf
    (Printf.sprintf "  putint(%s);\n  return (%s) & 63;\n}\n"
       (gen_expr r [ "a"; "b"; "c"; "g0"; "g1" ] !funcs 3)
       (gen_expr r [ "a"; "b"; "c"; "g0"; "g1" ] !funcs 3));
  Buffer.contents buf

(* -- the differential harness ----------------------------------------------- *)

let run_all_schemes (seed : int) : (string * int * string) list =
  let src = gen_program seed in
  let client =
    [ Workloads.Crt0.obj ();
      Minic.Driver.compile ~name:(Printf.sprintf "/obj/rand%d.o" seed) src ]
  in
  let w = Omos.World.create () in
  let rt = w.Omos.World.rt in
  let name = Printf.sprintf "rand%d" seed in
  let libs = [ "/lib/libc" ] in
  let progs =
    [
      ("static", Omos.Schemes.static_program rt ~name ~client ~libs);
      ("dynamic", Omos.Schemes.dynamic_program rt ~name ~client ~libs);
      ("omos-boot", Omos.Schemes.self_contained_program rt ~name ~client ~libs ());
      ( "omos-integ",
        Omos.Schemes.self_contained_program rt ~style:Omos.Schemes.Integrated ~name
          ~client ~libs () );
      ("partial", Omos.Schemes.partial_image_program rt ~name ~client ~libs);
    ]
  in
  List.map
    (fun (tag, p) ->
      let code, out = Omos.Schemes.invoke rt p ~args:[ name ] in
      (tag, code, out))
    progs

let prop_schemes_agree =
  QCheck.Test.make ~count:25 ~name:"all schemes agree on random programs"
    (QCheck.make ~print:gen_program (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      match run_all_schemes seed with
      | (_, code0, out0) :: rest ->
          List.for_all (fun (_, c, o) -> c = code0 && o = out0) rest
      | [] -> false)

(* a couple of pinned seeds as plain regression cases (fast failure
   triage without qcheck shrinking) *)
let test_pinned_seeds () =
  List.iter
    (fun seed ->
      match run_all_schemes seed with
      | (tag0, code0, out0) :: rest ->
          List.iter
            (fun (tag, c, o) ->
              Alcotest.(check int) (Printf.sprintf "seed %d: %s=%s exit" seed tag0 tag) code0 c;
              Alcotest.(check string) (Printf.sprintf "seed %d: %s=%s out" seed tag0 tag) out0 o)
            rest
      | [] -> Alcotest.fail "no schemes ran")
    [ 42; 1993; 271828 ]

(* optimized vs debuggable builds of random programs must agree — the
   peephole differential *)
let libc_members = lazy (List.map snd (Workloads.Libc_gen.objects ()))

let run_static_build ~optimize (seed : int) : int * string =
  let src = gen_program seed in
  let obj = Minic.Driver.compile ~optimize ~name:"r.o" src in
  let roots = [ Workloads.Crt0.obj (); obj ] in
  let pulled = Linker.Archive.select ~roots ~available:(Lazy.force libc_members) in
  let img, _ =
    Linker.Link.link
      ~layout:{ Linker.Link.text_base = 0x1000; data_base = 0x40000000 }
      (roots @ pulled)
  in
  let k = Simos.Kernel.create () in
  let p = Simos.Kernel.create_process k ~args:[ "r" ] in
  Simos.Kernel.map_image k p ~key:(string_of_int seed ^ string_of_bool optimize) img;
  Simos.Kernel.finish_exec k p ~entry:img.Linker.Image.entry;
  let code = Simos.Kernel.run k p () in
  (code, Simos.Proc.stdout_contents p)

let prop_optimizer_agrees =
  QCheck.Test.make ~count:40 ~name:"peephole-optimized programs agree with debuggable"
    (QCheck.make ~print:gen_program (QCheck.Gen.int_range 1 1_000_000))
    (fun seed ->
      run_static_build ~optimize:false seed = run_static_build ~optimize:true seed)

let test_generator_compiles () =
  (* the generator itself must always produce valid minic *)
  for seed = 1 to 50 do
    ignore (Minic.Driver.compile ~name:"gen.o" (gen_program seed))
  done

let () =
  Alcotest.run "differential"
    [
      ( "schemes",
        [
          Alcotest.test_case "generator wellformed" `Quick test_generator_compiles;
          Alcotest.test_case "pinned seeds" `Quick test_pinned_seeds;
          QCheck_alcotest.to_alcotest prop_schemes_agree;
          QCheck_alcotest.to_alcotest prop_optimizer_agrees;
        ] );
    ]
