(* Tests of the minic compiler: lexer, parser, and — most importantly —
   end-to-end semantics, checked by compiling, linking against a tiny
   crt0, and executing on the SVM. *)

let layout = { Linker.Link.text_base = 0x1000; data_base = 0x20000 }

(* crt0: set up the stack, call main, exit(r0) via syscall 0. *)
let crt0 () =
  let a = Sof.Asm.create "crt0.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.instr a (Svm.Isa.Movi (Svm.Isa.reg_sp, 0x7F000l));
  Sof.Asm.call a "main";
  Sof.Asm.instr a (Svm.Isa.Mov (1, 0));
  Sof.Asm.instr a (Svm.Isa.Sys 0l);
  Sof.Asm.finish a

(* Run a compiled program. Syscall 0 = exit(code); syscall 1 =
   write(addr, len) appends to an output buffer; syscall 2 = putint. *)
let run_src ?(fuel = 2_000_000) (src : string) : int * string =
  let obj = Minic.Driver.compile ~name:"test.o" src in
  let img, _ = Linker.Link.link ~layout [ crt0 (); obj ] in
  let mem, buf = Svm.Cpu.flat_mem 0x80000 in
  Linker.Image.load_into_flat img buf;
  let out = Buffer.create 64 in
  let sys (cpu : Svm.Cpu.t) n =
    match n with
    | 0 -> Svm.Cpu.Sys_exit (Int32.to_int (Svm.Cpu.get_reg cpu 1))
    | 1 ->
        let addr = Int32.to_int (Svm.Cpu.get_reg cpu 1) in
        let len = Int32.to_int (Svm.Cpu.get_reg cpu 2) in
        Buffer.add_bytes out (Svm.Cpu.read_bytes cpu addr len);
        Svm.Cpu.Sys_continue
    | 2 ->
        Buffer.add_string out (Int32.to_string (Svm.Cpu.get_reg cpu 1));
        Svm.Cpu.Sys_continue
    | _ -> Svm.Cpu.Sys_continue
  in
  let cpu = Svm.Cpu.create ~sys mem in
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  match Svm.Cpu.run ~fuel cpu with
  | Svm.Cpu.Exited code -> (code, Buffer.contents out)
  | Svm.Cpu.Halted -> Alcotest.fail "program halted instead of exiting"
  | Svm.Cpu.Running -> Alcotest.fail "program ran out of fuel"

let check_exit name expected src =
  let code, _ = run_src src in
  Alcotest.(check int) name expected code

let check_out name expected src =
  let _, out = run_src src in
  Alcotest.(check string) name expected out

(* -- lexer -------------------------------------------------------------- *)

let test_lex_basic () =
  let toks = Minic.Lexer.all "int x = 0x10; // comment\n/* multi\nline */ x" in
  Alcotest.(check bool) "tokens" true
    (toks
    = [ Minic.Token.INT; Minic.Token.IDENT "x"; Minic.Token.ASSIGN;
        Minic.Token.NUM 16l; Minic.Token.SEMI; Minic.Token.IDENT "x";
        Minic.Token.EOF ])

let test_lex_operators () =
  let toks = Minic.Lexer.all "<< >> <= >= == != && || < > = ! & |" in
  Alcotest.(check bool) "ops" true
    (toks
    = [ Minic.Token.SHL; Minic.Token.SHR; Minic.Token.LE; Minic.Token.GE;
        Minic.Token.EQ; Minic.Token.NE; Minic.Token.ANDAND; Minic.Token.OROR;
        Minic.Token.LT; Minic.Token.GT; Minic.Token.ASSIGN; Minic.Token.BANG;
        Minic.Token.AMP; Minic.Token.PIPE; Minic.Token.EOF ])

let test_lex_string_escapes () =
  match Minic.Lexer.all {|"a\n\t\"b"|} with
  | [ Minic.Token.STRING s; Minic.Token.EOF ] ->
      Alcotest.(check string) "escapes" "a\n\t\"b" s
  | _ -> Alcotest.fail "expected one string"

let test_lex_error () =
  try
    ignore (Minic.Lexer.all "int @;");
    Alcotest.fail "expected Lex_error"
  with Minic.Lexer.Lex_error _ -> ()

(* -- parser ------------------------------------------------------------- *)

let test_parse_error_reports_line () =
  try
    ignore (Minic.Driver.parse "int f() {\n  return +;\n}");
    Alcotest.fail "expected error"
  with Minic.Driver.Compile_error msg ->
    Alcotest.(check bool) "mentions line 2" true
      (Astring.String.is_infix ~affix:"line 2" msg
       || String.length msg > 0 && Str.string_match (Str.regexp ".*line 2.*") msg 0)

let test_parse_structures () =
  let prog =
    Minic.Driver.parse
      "extern int foo(int a); int g = 3; int arr[10]; char s[] = \"hi\";\n\
       static int helper(int x) { return x; }\n\
       ctor int setup() { return 0; }\n\
       int main() { return helper(g); }"
  in
  Alcotest.(check int) "seven decls" 7 (List.length prog)

(* -- semantics (executed) ----------------------------------------------- *)

let test_return_constant () = check_exit "42" 42 "int main() { return 42; }"

let test_arith_precedence () =
  check_exit "prec" 14 "int main() { return 2 + 3 * 4; }";
  check_exit "paren" 20 "int main() { return (2 + 3) * 4; }";
  check_exit "sub assoc" 1 "int main() { return 7 - 4 - 2; }";
  check_exit "div" 5 "int main() { return 17 / 3; }";
  check_exit "mod" 2 "int main() { return 17 % 3; }";
  check_exit "unary minus" 250 "int main() { return 255 + -5; }";
  check_exit "shift" 40 "int main() { return 5 << 3; }";
  check_exit "bitops" 14 "int main() { return (12 & 10) | (12 ^ 10); }"

let test_comparisons () =
  check_exit "lt" 1 "int main() { return 3 < 4; }";
  check_exit "ge" 0 "int main() { return 3 >= 4; }";
  check_exit "eq" 1 "int main() { return 5 == 5; }";
  check_exit "ne" 1 "int main() { return 5 != 4; }";
  check_exit "not" 1 "int main() { return !0; }";
  check_exit "not2" 0 "int main() { return !7; }"

let test_short_circuit () =
  (* g must not be touched when && short-circuits *)
  check_exit "and shortcircuit" 5
    "int g = 5; int touch() { g = 9; return 1; } \
     int main() { int x; x = 0 && touch(); return g; }";
  check_exit "or shortcircuit" 5
    "int g = 5; int touch() { g = 9; return 1; } \
     int main() { int x; x = 1 || touch(); return g; }";
  check_exit "and value" 1 "int main() { return 2 && 3; }";
  check_exit "or value" 1 "int main() { return 0 || 7; }"

let test_locals_and_params () =
  check_exit "locals" 30
    "int add(int a, int b) { int s; s = a + b; return s; } \
     int main() { return add(10, 20); }";
  check_exit "param order" 3
    "int sub(int a, int b) { return a - b; } int main() { return sub(10, 7); }"

let test_globals () =
  check_exit "global init" 7 "int g = 7; int main() { return g; }";
  check_exit "global write" 12
    "int g = 7; int main() { g = g + 5; return g; }";
  check_exit "global default zero" 0 "int g; int main() { return g; }"

let test_arrays () =
  check_exit "array rw" 99
    "int a[10]; int main() { a[3] = 99; return a[3]; }";
  check_exit "array loop" 45
    "int a[10]; int main() { int i; int s; i = 0; \
     while (i < 10) { a[i] = i; i = i + 1; } \
     s = 0; i = 0; while (i < 10) { s = s + a[i]; i = i + 1; } return s; }";
  check_exit "array via pointer param" 5
    "int a[4]; int get(int p, int i) { return p[i]; } \
     int main() { a[2] = 5; return get(&a, 2); }"

let test_strings_and_bytes () =
  check_exit "load8" 104 (* 'h' *)
    "int main() { int s; s = \"hi\"; return __load8(s); }";
  check_exit "store8" 72
    "char buf[] = \"xyz\"; int main() { __store8(&buf, 72); return __load8(&buf); }";
  check_out "write syscall" "hello"
    "int main() { __syscall(1, \"hello\", 5); return 0; }"

let test_string_dedup () =
  (* same literal twice: interned once; program still works *)
  check_out "dedup" "abab"
    "int main() { __syscall(1, \"ab\", 2); __syscall(1, \"ab\", 2); return 0; }"

let test_control_flow () =
  check_exit "if" 1 "int main() { if (3 < 4) return 1; return 2; }";
  check_exit "else" 2 "int main() { if (4 < 3) return 1; else return 2; }";
  check_exit "nested if" 3
    "int main() { if (1) { if (0) return 2; else return 3; } return 4; }";
  check_exit "while sum" 55
    "int main() { int i; int s; i = 1; s = 0; \
     while (i <= 10) { s = s + i; i = i + 1; } return s; }";
  check_exit "break" 5
    "int main() { int i; i = 0; while (1) { if (i == 5) break; i = i + 1; } return i; }";
  check_exit "continue" 25
    "int main() { int i; int s; i = 0; s = 0; \
     while (i < 10) { i = i + 1; if (i % 2 == 0) continue; s = s + i; } return s; }"

let test_for_loops () =
  check_exit "for sum" 45
    "int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }";
  check_exit "for no init" 10
    "int main() { int i; int s; i = 0; s = 0; for (; i < 10; i = i + 2) { s = s + 2; } return s; }";
  check_exit "for continue hits step" 25
    "int main() { int i; int s; s = 0; \
     for (i = 1; i <= 10; i = i + 1) { if (i % 2 == 0) continue; s = s + i; } return s; }";
  check_exit "for break" 4
    "int main() { int i; for (i = 0; ; i = i + 1) { if (i == 4) break; } return i; }";
  check_exit "nested for" 100
    "int main() { int i; int j; int s; s = 0; \
     for (i = 0; i < 10; i = i + 1) for (j = 0; j < 10; j = j + 1) s = s + 1; return s; }";
  check_exit "for with array store step" 3
    "int a[4]; int main() { int i; for (i = 0; i < 4; a[i] = i) { i = i + 1; } return a[3]; }"

let test_char_literals () =
  check_exit "plain" 97 "int main() { return 'a'; }";
  check_exit "escape newline" 10 "int main() { return '\\n'; }";
  check_exit "escape nul" 0 "int main() { return '\\0'; }";
  check_exit "in comparison" 1
    "int main() { int c; c = __load8(\"hat\"); return c == 'h'; }"

let test_recursion () =
  check_exit "fib" 55
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
     int main() { return fib(10); }";
  check_exit "mutual" 1
    "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); } \
     int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); } \
     int main() { return is_even(10); }"

let test_fall_off_returns_zero () =
  check_exit "implicit return" 0 "int main() { int x; x = 5; }"

let test_function_address () =
  (* taking a function's address and reading the first word of its code *)
  check_exit "fn addr nonzero" 1
    "int f() { return 3; } int main() { int p; p = f; return p != 0; }"

let test_static_function_is_local () =
  let obj =
    Minic.Driver.compile ~name:"s.o"
      "static int hidden(int x) { return x; } int main() { return hidden(4); }"
  in
  (match Sof.Object_file.find_symbol obj "hidden" with
  | Some s ->
      Alcotest.(check bool) "local binding" true (s.Sof.Symbol.binding = Sof.Symbol.Local)
  | None -> Alcotest.fail "hidden missing");
  check_exit "still callable internally" 4
    "static int hidden(int x) { return x; } int main() { return hidden(4); }"

let test_ctor_recorded () =
  let obj =
    Minic.Driver.compile ~name:"c.o"
      "int g = 0; ctor int boot() { g = 1; return 0; } int main() { return g; }"
  in
  Alcotest.(check (list string)) "ctors" [ "boot" ] obj.Sof.Object_file.ctors

let test_extern_and_undefined () =
  let obj =
    Minic.Driver.compile ~name:"e.o"
      "extern int puts(int s); int main() { return puts(\"x\"); }"
  in
  Alcotest.(check bool) "puts undefined" true
    (List.mem "puts" (Sof.Object_file.undefined obj))

let test_arity_check () =
  try
    ignore (Minic.Driver.compile ~name:"a.o"
              "int f(int a, int b) { return a + b; } int main() { return f(1); }");
    Alcotest.fail "expected arity error"
  with Minic.Driver.Compile_error msg ->
    Alcotest.(check bool) "mentions f" true (String.length msg > 0)

let test_undeclared_variable () =
  try
    ignore (Minic.Driver.compile ~name:"u.o" "int main() { return zzz; }");
    Alcotest.fail "expected error"
  with Minic.Driver.Compile_error _ -> ()

let test_duplicate_global () =
  try
    ignore (Minic.Driver.compile ~name:"d.o" "int g = 1; int g = 2; int main() { return g; }");
    Alcotest.fail "expected error"
  with Minic.Driver.Compile_error _ -> ()

let test_symbol_sizes_recorded () =
  let obj =
    Minic.Driver.compile ~name:"sz.o"
      "int small() { return 1; } int big(int a) { int b; b = a; \
       if (b) { b = b + 1; } while (b < 10) { b = b + 1; } return b; } \
       int main() { return big(small()); }"
  in
  let size name =
    match Sof.Object_file.find_symbol obj name with
    | Some s -> s.Sof.Symbol.size
    | None -> Alcotest.fail (name ^ " missing")
  in
  Alcotest.(check bool) "sizes positive" true (size "small" > 0 && size "big" > 0);
  Alcotest.(check bool) "big bigger" true (size "big" > size "small")

(* -- split compilation --------------------------------------------------- *)

let test_split_compiles_per_function () =
  let objs =
    Minic.Driver.compile_split ~name:"lib.c"
      "int one() { return 1; } int two() { return one() + 1; } int g = 5;"
  in
  Alcotest.(check int) "two functions + globals" 3 (List.length objs);
  let names = List.map (fun o -> o.Sof.Object_file.name) objs in
  Alcotest.(check bool) "per-function names" true
    (List.exists (fun n -> n = "lib.one.o") names
     && List.exists (fun n -> n = "lib.two.o") names)

let test_split_links_and_runs () =
  let objs =
    Minic.Driver.compile_split ~name:"lib.c"
      "int g = 5; int one() { return g; } int two() { return one() + 1; } \
       int main() { return two(); }"
  in
  let img, _ = Linker.Link.link ~layout (crt0 () :: objs) in
  let mem, buf = Svm.Cpu.flat_mem 0x80000 in
  Linker.Image.load_into_flat img buf;
  let sys (cpu : Svm.Cpu.t) n =
    if n = 0 then Svm.Cpu.Sys_exit (Int32.to_int (Svm.Cpu.get_reg cpu 1))
    else Svm.Cpu.Sys_continue
  in
  let cpu = Svm.Cpu.create ~sys mem in
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  (match Svm.Cpu.run ~fuel:100_000 cpu with
  | Svm.Cpu.Exited 6 -> ()
  | o ->
      Alcotest.failf "unexpected outcome %s"
        (match o with
        | Svm.Cpu.Exited n -> Printf.sprintf "exit %d" n
        | Svm.Cpu.Halted -> "halt"
        | Svm.Cpu.Running -> "running"))

let test_split_rejects_static () =
  try
    ignore (Minic.Driver.compile_split ~name:"s.c" "static int f() { return 1; }");
    Alcotest.fail "expected error"
  with Minic.Driver.Compile_error _ -> ()

(* -- properties ---------------------------------------------------------- *)

let prop_constant_expressions =
  (* compile-and-run evaluates arithmetic the same way OCaml does
     (within int32) *)
  let gen = QCheck.Gen.(pair (int_range 0 1000) (int_range 1 1000)) in
  QCheck.Test.make ~count:40 ~name:"compiled arithmetic agrees with host"
    (QCheck.make ~print:(fun (a, b) -> Printf.sprintf "(%d,%d)" a b) gen)
    (fun (a, b) ->
      let src =
        Printf.sprintf
          "int main() { return ((%d + %d) * 3 - %d / 2) %% 256; }" a b b
      in
      let expected = ((a + b) * 3 - (b / 2)) mod 256 in
      fst (run_src src) = expected)

let prop_fib_matches =
  QCheck.Test.make ~count:10 ~name:"recursive fib agrees with host"
    (QCheck.int_range 0 15)
    (fun n ->
      let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) in
      let src =
        Printf.sprintf
          "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
           int main() { return fib(%d); }" n
      in
      fst (run_src src) = fib n)

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "error" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "error line" `Quick test_parse_error_reports_line;
          Alcotest.test_case "structures" `Quick test_parse_structures;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "constant" `Quick test_return_constant;
          Alcotest.test_case "precedence" `Quick test_arith_precedence;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "locals/params" `Quick test_locals_and_params;
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "strings/bytes" `Quick test_strings_and_bytes;
          Alcotest.test_case "string dedup" `Quick test_string_dedup;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "for loops" `Quick test_for_loops;
          Alcotest.test_case "char literals" `Quick test_char_literals;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "implicit return" `Quick test_fall_off_returns_zero;
          Alcotest.test_case "function address" `Quick test_function_address;
        ] );
      ( "declarations",
        [
          Alcotest.test_case "static local binding" `Quick test_static_function_is_local;
          Alcotest.test_case "ctor" `Quick test_ctor_recorded;
          Alcotest.test_case "extern" `Quick test_extern_and_undefined;
          Alcotest.test_case "arity" `Quick test_arity_check;
          Alcotest.test_case "undeclared" `Quick test_undeclared_variable;
          Alcotest.test_case "duplicate global" `Quick test_duplicate_global;
          Alcotest.test_case "symbol sizes" `Quick test_symbol_sizes_recorded;
        ] );
      ( "split",
        [
          Alcotest.test_case "per function" `Quick test_split_compiles_per_function;
          Alcotest.test_case "links and runs" `Quick test_split_links_and_runs;
          Alcotest.test_case "rejects static" `Quick test_split_rejects_static;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_constant_expressions; prop_fib_matches ] );
    ]
