(* Tests of the Jigsaw module operators — including executable checks
   that the binding semantics (override rebinding, freeze/hide fixing
   bindings, the paper's Figure 2 interposition pattern) actually hold
   when the module is linked and run. *)

let layout = { Linker.Link.text_base = 0x1000; data_base = 0x8000 }

let sel = Jigsaw.Select.compile

(* A mini "libc": malloc returns 100, free returns 0; util calls malloc
   internally and adds 1. *)
let libc_frag () =
  let a = Sof.Asm.create "libc.o" in
  Sof.Asm.label a "_malloc";
  Sof.Asm.instrs a [ Svm.Isa.Movi (0, 100l); Svm.Isa.Ret ];
  Sof.Asm.label a "_free";
  Sof.Asm.instrs a [ Svm.Isa.Movi (0, 0l); Svm.Isa.Ret ];
  Sof.Asm.label a "_util";
  Sof.Asm.instrs a
    [ Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, -4l);
      Svm.Isa.St (Svm.Isa.reg_sp, Svm.Isa.reg_ra, 0l) ];
  Sof.Asm.call a "_malloc";
  Sof.Asm.instrs a
    [ Svm.Isa.Addi (0, 0, 1l);
      Svm.Isa.Ld (Svm.Isa.reg_ra, Svm.Isa.reg_sp, 0l);
      Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, 4l);
      Svm.Isa.Ret ];
  Sof.Asm.finish a

(* main: r5 := malloc(); r6 := util(); halt *)
let main_frag () =
  let a = Sof.Asm.create "main.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.call a "_malloc";
  Sof.Asm.instr a (Svm.Isa.Mov (5, 0));
  Sof.Asm.call a "_util";
  Sof.Asm.instr a (Svm.Isa.Mov (6, 0));
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.finish a

(* replacement malloc: returns 200 *)
let new_malloc_frag () =
  let a = Sof.Asm.create "test_malloc.o" in
  Sof.Asm.label a "_malloc";
  Sof.Asm.instrs a [ Svm.Isa.Movi (0, 200l); Svm.Isa.Ret ];
  Sof.Asm.finish a

(* wrapper malloc: calls _REAL_malloc and adds 1000 *)
let wrapper_malloc_frag () =
  let a = Sof.Asm.create "wrap_malloc.o" in
  Sof.Asm.label a "_malloc";
  Sof.Asm.instrs a
    [ Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, -4l);
      Svm.Isa.St (Svm.Isa.reg_sp, Svm.Isa.reg_ra, 0l) ];
  Sof.Asm.call a "_REAL_malloc";
  Sof.Asm.instrs a
    [ Svm.Isa.Movi (2, 1000l); Svm.Isa.Add (0, 0, 2);
      Svm.Isa.Ld (Svm.Isa.reg_ra, Svm.Isa.reg_sp, 0l);
      Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, 4l);
      Svm.Isa.Ret ];
  Sof.Asm.finish a

let run_module (m : Jigsaw.Module_ops.t) =
  let img, _ = Linker.Link.link ~layout (Jigsaw.Module_ops.fragments m) in
  let mem, buf = Svm.Cpu.flat_mem 0x20000 in
  Linker.Image.load_into_flat img buf;
  let cpu = Svm.Cpu.create mem in
  Svm.Cpu.set_reg cpu Svm.Isa.reg_sp 0x1F000l;
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  ignore (Svm.Cpu.run ~fuel:10_000 cpu);
  cpu

let r5 cpu = Svm.Cpu.get_reg cpu 5
let r6 cpu = Svm.Cpu.get_reg cpu 6

let mk_module () =
  Jigsaw.Module_ops.merge
    (Jigsaw.Module_ops.of_object (main_frag ()))
    (Jigsaw.Module_ops.of_object (libc_frag ()))

(* -- basic queries ------------------------------------------------------ *)

let test_exports_and_undefined () =
  let m = Jigsaw.Module_ops.of_object (main_frag ()) in
  Alcotest.(check (list string)) "exports" [ "_start" ] (Jigsaw.Module_ops.exports m);
  Alcotest.(check (list string)) "undefined" [ "_malloc"; "_util" ]
    (Jigsaw.Module_ops.undefined m)

let test_merge_resolves () =
  let m = mk_module () in
  Alcotest.(check (list string)) "nothing undefined" [] (Jigsaw.Module_ops.undefined m);
  let cpu = run_module m in
  Alcotest.(check int32) "malloc" 100l (r5 cpu);
  Alcotest.(check int32) "util" 101l (r6 cpu)

let test_merge_duplicate_error () =
  try
    ignore
      (Jigsaw.Module_ops.merge
         (Jigsaw.Module_ops.of_object (libc_frag ()))
         (Jigsaw.Module_ops.of_object (new_malloc_frag ())));
    Alcotest.fail "expected Module_error"
  with Jigsaw.Module_ops.Module_error _ -> ()

(* -- override ----------------------------------------------------------- *)

let test_override_replaces_and_rebinds () =
  (* override libc with new malloc: client AND libc-internal callers
     (util) must both see the new definition *)
  let m =
    Jigsaw.Module_ops.merge
      (Jigsaw.Module_ops.of_object (main_frag ()))
      (Jigsaw.Module_ops.override
         (Jigsaw.Module_ops.of_object (libc_frag ()))
         (Jigsaw.Module_ops.of_object (new_malloc_frag ())))
  in
  let cpu = run_module m in
  Alcotest.(check int32) "client rebound" 200l (r5 cpu);
  Alcotest.(check int32) "internal rebound" 201l (r6 cpu)

(* -- freeze ------------------------------------------------------------- *)

let test_freeze_prevents_rebinding () =
  (* freeze _malloc inside libc first: util's internal call is fixed;
     a later override replaces the public malloc only *)
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let frozen = Jigsaw.Module_ops.freeze (sel "^_malloc$") libc in
  let m =
    Jigsaw.Module_ops.merge
      (Jigsaw.Module_ops.of_object (main_frag ()))
      (Jigsaw.Module_ops.override frozen
         (Jigsaw.Module_ops.of_object (new_malloc_frag ())))
  in
  let cpu = run_module m in
  Alcotest.(check int32) "client sees new" 200l (r5 cpu);
  Alcotest.(check int32) "internal frozen to old" 101l (r6 cpu)

(* -- hide --------------------------------------------------------------- *)

let test_hide_removes_export_keeps_internal () =
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let hidden = Jigsaw.Module_ops.hide (sel "^_malloc$") libc in
  Alcotest.(check bool) "not exported" true
    (not (List.mem "_malloc" (Jigsaw.Module_ops.exports hidden)));
  (* client's _malloc reference is now unbound *)
  let m0 =
    { (Jigsaw.Module_ops.merge (Jigsaw.Module_ops.of_object (main_frag ())) hidden) with
      Jigsaw.Module_ops.label = "test" }
  in
  Alcotest.(check (list string)) "client ref unbound" [ "_malloc" ]
    (Jigsaw.Module_ops.undefined m0);
  (* but merging a new malloc binds the client, while util still uses
     the hidden original *)
  let m = Jigsaw.Module_ops.merge m0 (Jigsaw.Module_ops.of_object (new_malloc_frag ())) in
  let cpu = run_module m in
  Alcotest.(check int32) "client gets new" 200l (r5 cpu);
  Alcotest.(check int32) "util keeps hidden" 101l (r6 cpu)

let test_show_complement () =
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let shown = Jigsaw.Module_ops.show (sel "^_malloc$") libc in
  let exports = Jigsaw.Module_ops.exports shown in
  Alcotest.(check bool) "malloc visible" true (List.mem "_malloc" exports);
  Alcotest.(check bool) "free hidden" false (List.mem "_free" exports);
  Alcotest.(check bool) "util hidden" false (List.mem "_util" exports)

(* -- restrict / project -------------------------------------------------- *)

let test_restrict_virtualizes () =
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let r = Jigsaw.Module_ops.restrict (sel "^_malloc$") libc in
  Alcotest.(check bool) "def removed" true
    (not (List.mem "_malloc" (Jigsaw.Module_ops.exports r)));
  Alcotest.(check bool) "ref still there (from util)" true
    (List.mem "_malloc" (Jigsaw.Module_ops.undefined r))

let test_project_keeps_only_selected () =
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let p = Jigsaw.Module_ops.project (sel "^_malloc$") libc in
  Alcotest.(check (list string)) "only malloc" [ "_malloc" ] (Jigsaw.Module_ops.exports p)

(* -- copy_as / rename ----------------------------------------------------- *)

let test_copy_as () =
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let c = Jigsaw.Module_ops.copy_as (sel "^_malloc$") "_REAL_malloc" libc in
  let exports = Jigsaw.Module_ops.exports c in
  Alcotest.(check bool) "original" true (List.mem "_malloc" exports);
  Alcotest.(check bool) "copy" true (List.mem "_REAL_malloc" exports)

let test_rename_with_groups () =
  let libc = Jigsaw.Module_ops.of_object (libc_frag ()) in
  let renamed = Jigsaw.Module_ops.rename (sel "^_\\(.*\\)$") "pkg_\\1" libc in
  let exports = Jigsaw.Module_ops.exports renamed in
  Alcotest.(check bool) "pkg_malloc" true (List.mem "pkg_malloc" exports);
  Alcotest.(check bool) "no _malloc" false (List.mem "_malloc" exports)

let test_rename_refs_only_reroutes () =
  (* Figure 3 pattern: reroute refs to a bad routine to _abort *)
  let bad =
    let a = Sof.Asm.create "bad.o" in
    Sof.Asm.label a "caller";
    Sof.Asm.call a "_undefined_routine";
    Sof.Asm.instr a Svm.Isa.Ret;
    Sof.Asm.finish a
  in
  let m = Jigsaw.Module_ops.of_object bad in
  let m = Jigsaw.Module_ops.rename ~scope:Jigsaw.Module_ops.Refs_only
      (sel "^_undefined_routine$") "_abort" m
  in
  Alcotest.(check (list string)) "now refs abort" [ "_abort" ]
    (Jigsaw.Module_ops.undefined m)

(* -- figure 2: the full interposition pattern ----------------------------- *)

let test_figure2_interposition () =
  (* (hide "_REAL_malloc" (merge (restrict "^_malloc$" (copy_as
     "^_malloc$" "_REAL_malloc" (merge main libc))) wrapper)) *)
  let base = mk_module () in
  let stashed = Jigsaw.Module_ops.copy_as (sel "^_malloc$") "_REAL_malloc" base in
  let virtualized = Jigsaw.Module_ops.restrict (sel "^_malloc$") stashed in
  let merged =
    Jigsaw.Module_ops.merge virtualized
      (Jigsaw.Module_ops.of_object (wrapper_malloc_frag ()))
  in
  let final = Jigsaw.Module_ops.hide (sel "^_REAL_malloc$") merged in
  let cpu = run_module final in
  (* wrapper = REAL_malloc() + 1000 = 1100; client and util both go
     through the wrapper *)
  Alcotest.(check int32) "client trapped" 1100l (r5 cpu);
  Alcotest.(check int32) "util trapped" 1101l (r6 cpu);
  Alcotest.(check bool) "REAL hidden" true
    (not (List.mem "_REAL_malloc" (Jigsaw.Module_ops.exports final)))

(* -- initializers --------------------------------------------------------- *)

let test_initializers () =
  (* two ctors increment a counter; __init must call both in order *)
  let lib =
    let a = Sof.Asm.create "ctors.o" in
    Sof.Asm.label a "ctor_one";
    Sof.Asm.lea a 2 "counter";
    Sof.Asm.instrs a
      [ Svm.Isa.Ld (3, 2, 0l); Svm.Isa.Addi (3, 3, 1l); Svm.Isa.St (2, 3, 0l); Svm.Isa.Ret ];
    Sof.Asm.ctor a "ctor_one";
    Sof.Asm.label a "ctor_two";
    Sof.Asm.lea a 2 "counter";
    Sof.Asm.instrs a
      [ Svm.Isa.Ld (3, 2, 0l); Svm.Isa.Movi (4, 10l); Svm.Isa.Mul (3, 3, 4);
        Svm.Isa.St (2, 3, 0l); Svm.Isa.Ret ];
    Sof.Asm.ctor a "ctor_two";
    Sof.Asm.data_label a "counter";
    Sof.Asm.data_word a 0l;
    Sof.Asm.finish a
  in
  let main =
    let a = Sof.Asm.create "m.o" in
    Sof.Asm.label a "_start";
    Sof.Asm.call a "__init";
    Sof.Asm.lea a 2 "counter";
    Sof.Asm.instrs a [ Svm.Isa.Ld (5, 2, 0l); Svm.Isa.Halt ];
    Sof.Asm.finish a
  in
  let m =
    Jigsaw.Module_ops.initializers
      (Jigsaw.Module_ops.merge
         (Jigsaw.Module_ops.of_object main)
         (Jigsaw.Module_ops.of_object lib))
  in
  let cpu = run_module m in
  (* (0+1)*10 = 10: order matters *)
  Alcotest.(check int32) "ctors ran in order" 10l (r5 cpu)

(* -- to_object ------------------------------------------------------------ *)

let test_to_object_flattens () =
  let m = mk_module () in
  let o = Jigsaw.Module_ops.to_object ~name:"flat.o" m in
  Alcotest.(check bool) "start" true (Sof.Object_file.defines o "_start");
  Alcotest.(check bool) "malloc" true (Sof.Object_file.defines o "_malloc")

(* -- properties ------------------------------------------------------------ *)

(* algebraic laws over exported namespaces *)
let exports_of m = List.sort compare (Jigsaw.Module_ops.exports m)

let prop_project_is_restrict_complement =
  QCheck.Test.make ~count:30 ~name:"project sel = restrict (complement sel)" QCheck.unit
    (fun () ->
      let m = Jigsaw.Module_ops.of_object (libc_frag ()) in
      let keep = sel "^_malloc$" in
      let projected = Jigsaw.Module_ops.project keep m in
      let complement =
        Jigsaw.Module_ops.restrict (sel "^_\\(free\\|util\\)$") m
      in
      exports_of projected = exports_of complement)

let prop_hide_idempotent =
  QCheck.Test.make ~count:30 ~name:"hide is idempotent on exports" QCheck.unit
    (fun () ->
      let m = Jigsaw.Module_ops.of_object (libc_frag ()) in
      let once = Jigsaw.Module_ops.hide (sel "^_malloc$") m in
      let twice = Jigsaw.Module_ops.hide (sel "^_malloc$") once in
      exports_of once = exports_of twice)

let prop_merge_exports_commute =
  QCheck.Test.make ~count:30 ~name:"merge exports commute for disjoint modules"
    QCheck.unit
    (fun () ->
      let a = Jigsaw.Module_ops.of_object (main_frag ()) in
      let b = Jigsaw.Module_ops.of_object (libc_frag ()) in
      exports_of (Jigsaw.Module_ops.merge a b)
      = exports_of (Jigsaw.Module_ops.merge b a))

let prop_override_exports_union =
  QCheck.Test.make ~count:30 ~name:"override exports = union of exports" QCheck.unit
    (fun () ->
      let a = Jigsaw.Module_ops.of_object (libc_frag ()) in
      let b = Jigsaw.Module_ops.of_object (new_malloc_frag ()) in
      let united =
        List.sort_uniq compare
          (Jigsaw.Module_ops.exports a @ Jigsaw.Module_ops.exports b)
      in
      exports_of (Jigsaw.Module_ops.override a b) = united)

let prop_restrict_then_merge_restores =
  QCheck.Test.make ~count:50 ~name:"restrict+merge same def behaves like original"
    QCheck.unit
    (fun () ->
      let m = mk_module () in
      let m' =
        Jigsaw.Module_ops.merge
          (Jigsaw.Module_ops.restrict (sel "^_malloc$") m)
          (Jigsaw.Module_ops.of_object (new_malloc_frag ()))
      in
      let cpu = run_module m' in
      r5 cpu = 200l && r6 cpu = 201l)

let prop_rename_roundtrip_preserves_behaviour =
  QCheck.Test.make ~count:30 ~name:"rename away and back preserves behaviour"
    QCheck.unit
    (fun () ->
      let m = mk_module () in
      let m' =
        Jigsaw.Module_ops.rename (sel "^zz_\\(.*\\)$") "_\\1"
          (Jigsaw.Module_ops.rename (sel "^_\\(.*\\)$") "zz_\\1" m)
      in
      let cpu = run_module m' in
      r5 cpu = 100l && r6 cpu = 101l)

let () =
  Alcotest.run "jigsaw"
    [
      ( "basics",
        [
          Alcotest.test_case "exports/undefined" `Quick test_exports_and_undefined;
          Alcotest.test_case "merge resolves" `Quick test_merge_resolves;
          Alcotest.test_case "merge duplicate" `Quick test_merge_duplicate_error;
          Alcotest.test_case "to_object" `Quick test_to_object_flattens;
        ] );
      ( "binding",
        [
          Alcotest.test_case "override rebinds" `Quick test_override_replaces_and_rebinds;
          Alcotest.test_case "freeze prevents rebinding" `Quick test_freeze_prevents_rebinding;
          Alcotest.test_case "hide" `Quick test_hide_removes_export_keeps_internal;
          Alcotest.test_case "show" `Quick test_show_complement;
          Alcotest.test_case "restrict" `Quick test_restrict_virtualizes;
          Alcotest.test_case "project" `Quick test_project_keeps_only_selected;
          Alcotest.test_case "copy_as" `Quick test_copy_as;
          Alcotest.test_case "rename groups" `Quick test_rename_with_groups;
          Alcotest.test_case "rename refs only" `Quick test_rename_refs_only_reroutes;
        ] );
      ( "composition",
        [
          Alcotest.test_case "figure 2 interposition" `Quick test_figure2_interposition;
          Alcotest.test_case "initializers" `Quick test_initializers;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_restrict_then_merge_restores; prop_rename_roundtrip_preserves_behaviour;
            prop_project_is_restrict_complement; prop_hide_idempotent;
            prop_merge_exports_commute; prop_override_exports_union ] );
    ]
