(* Tests of the synthetic workloads: libc completeness, ls behaviour
   against the simulated filesystem, codegen shape and determinism. *)

(* Statically link client objects + libc and run under the kernel. *)
let run_static ?(args = []) (client : Sof.Object_file.t list) : int * string =
  let w = Omos.World.create () in
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"t" ~client
      ~libs:[ "/lib/libc" ]
  in
  Omos.Schemes.invoke w.Omos.World.rt prog ~args

let compile name src = Minic.Driver.compile ~name src

let crt0 = Workloads.Crt0.obj

(* -- libc ----------------------------------------------------------------- *)

let test_libc_sections_compile () =
  let objs = Workloads.Libc_gen.objects () in
  Alcotest.(check int) "eight sections" 8 (List.length objs);
  List.iter
    (fun (path, (o : Sof.Object_file.t)) ->
      Alcotest.(check bool) (path ^ " nonempty") true (Bytes.length o.Sof.Object_file.text > 0))
    objs

let test_libc_merges_without_conflict () =
  let objs = List.map snd (Workloads.Libc_gen.objects ()) in
  let m = Jigsaw.Module_ops.of_objects ~label:"libc" objs in
  let merged = Jigsaw.Module_ops.merge_list [ m ] in
  Alcotest.(check bool) "has strlen" true
    (List.mem "strlen" (Jigsaw.Module_ops.exports merged));
  Alcotest.(check bool) "self-contained" true
    (Jigsaw.Module_ops.undefined merged = [])

let test_libc_size_realistic () =
  let objs = List.map snd (Workloads.Libc_gen.objects ()) in
  let text = List.fold_left (fun a (o : Sof.Object_file.t) -> a + Bytes.length o.Sof.Object_file.text) 0 objs in
  let nfuncs =
    List.fold_left
      (fun a (o : Sof.Object_file.t) ->
        a
        + List.length
            (List.filter
               (fun (s : Sof.Symbol.t) ->
                 Sof.Symbol.is_exported s && s.Sof.Symbol.kind = Sof.Symbol.Text)
               o.Sof.Object_file.symbols))
      0 objs
  in
  Alcotest.(check bool) "200+ functions" true (nfuncs >= 200);
  Alcotest.(check bool) "50KB+ of text" true (text >= 50_000)

let test_libc_string_functions () =
  let code, out =
    run_static
      [ crt0 ();
        compile "t.o"
          "int main() { \
           int b; b = malloc(32); \
           strcpy(b, \"abc\"); strcat(b, \"def\"); \
           putstr(b); \
           putint(strlen(b)); \
           putint(strcmp(b, \"abcdef\")); \
           putint(atoi(\"451x\")); \
           return imax(3, imin(9, 7)); }" ]
  in
  Alcotest.(check string) "output" "abcdef60451" out;
  Alcotest.(check int) "exit" 7 code

let test_libc_putint_negative () =
  let _, out =
    run_static
      [ crt0 (); compile "t.o" "int main() { putint(0 - 45); putint(0); return 0; }" ]
  in
  Alcotest.(check string) "negatives and zero" "-450" out

let test_libc_split_objects () =
  let objs = Workloads.Libc_gen.split_objects "string" in
  Alcotest.(check bool) "many fragments" true (List.length objs > 20);
  Alcotest.(check bool) "strlen alone" true
    (List.exists
       (fun (o : Sof.Object_file.t) ->
         Sof.Object_file.defines o "strlen" && not (Sof.Object_file.defines o "strcpy"))
       objs)

(* -- ls -------------------------------------------------------------------- *)

let test_ls_single_dir () =
  let w = Omos.World.create () in
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let code, out = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.ls_single_args in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string) "one entry" "README\n" out

let test_ls_flags () =
  let w = Omos.World.create ~many_entries:3 () in
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let run args = snd (Omos.Schemes.invoke w.Omos.World.rt prog ~args) in
  let plain = run [ "ls"; Workloads.Dataset.dir_many ] in
  let all = run [ "ls"; "-a"; Workloads.Dataset.dir_many ] in
  let laf = run [ "ls"; "-laF"; Workloads.Dataset.dir_many ] in
  Alcotest.(check bool) "no dotfiles" false
    (Astring.String.is_infix ~affix:".hidden" plain);
  Alcotest.(check bool) "-a shows dotfiles" true
    (Astring.String.is_infix ~affix:".hidden" all);
  Alcotest.(check bool) "-l sizes" true
    (Astring.String.is_infix ~affix:"2 file001.dat" laf);
  Alcotest.(check bool) "-F marks dirs" true
    (Astring.String.is_infix ~affix:"subdir/" laf)

let test_ls_missing_dir () =
  let w = Omos.World.create () in
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let code, out = Omos.Schemes.invoke w.Omos.World.rt prog ~args:[ "ls"; "/nope" ] in
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "error message" true
    (Astring.String.is_infix ~affix:"cannot open" out)

let test_ls_laf_does_more_work () =
  (* the paper's premise: -laF makes many more syscalls *)
  let w = Omos.World.create () in
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"ls"
      ~client:(Omos.World.ls_client w) ~libs:Omos.World.ls_libs
  in
  let count args =
    let k = w.Omos.World.kernel in
    let before = k.Simos.Kernel.syscall_count in
    ignore (Omos.Schemes.invoke w.Omos.World.rt prog ~args);
    k.Simos.Kernel.syscall_count - before
  in
  let plain = count Omos.World.ls_single_args in
  let laf = count Omos.World.ls_laf_args in
  Alcotest.(check bool) "laF >> plain" true (laf > 5 * plain)

(* -- codegen ----------------------------------------------------------------- *)

let test_codegen_dimensions () =
  let objs = Workloads.Codegen_gen.objects () in
  Alcotest.(check int) "32 files + main" 33 (List.length objs);
  let text =
    List.fold_left (fun a (_, (o : Sof.Object_file.t)) -> a + Bytes.length o.Sof.Object_file.text) 0 objs
  in
  let funcs =
    List.fold_left
      (fun a (_, (o : Sof.Object_file.t)) ->
        a
        + List.length
            (List.filter
               (fun (s : Sof.Symbol.t) ->
                 Sof.Symbol.is_exported s && s.Sof.Symbol.kind = Sof.Symbol.Text)
               o.Sof.Object_file.symbols))
      0 objs
  in
  (* the paper: roughly 1,000 functions, 289KB debuggable text on
     PA-RISC (4-byte instructions); SVM instructions are 8 bytes and the
     compiler is unoptimized, so allow roughly 2x *)
  Alcotest.(check bool) "about 1000 functions" true (funcs >= 900 && funcs <= 1100);
  Alcotest.(check bool) "300KB..800KB text" true (text >= 300_000 && text <= 800_000)

let test_codegen_runs_and_is_deterministic () =
  let w = Omos.World.create () in
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"codegen"
      ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs
  in
  let c1, o1 = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.codegen_args in
  let c2, o2 = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.codegen_args in
  Alcotest.(check int) "exit 0" 0 c1;
  Alcotest.(check int) "same exit" c1 c2;
  Alcotest.(check string) "same output" o1 o2;
  Alcotest.(check bool) "prints a result" true
    (Astring.String.is_prefix ~affix:"codegen: " o1)

let test_codegen_reads_inputs () =
  let w = Omos.World.create () in
  Simos.Fs.write_file w.Omos.World.kernel.Simos.Kernel.fs "/input/a"
    (Bytes.of_string "999\n");
  let prog =
    Omos.Schemes.static_program w.Omos.World.rt ~name:"codegen"
      ~client:(Omos.World.codegen_client w) ~libs:Omos.World.codegen_libs
  in
  let _, out1 = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.codegen_args in
  Simos.Fs.write_file w.Omos.World.kernel.Simos.Kernel.fs "/input/a"
    (Bytes.of_string "1\n");
  let _, out2 = Omos.Schemes.invoke w.Omos.World.rt prog ~args:Omos.World.codegen_args in
  Alcotest.(check bool) "input affects output" true (out1 <> out2)

let test_aux_libraries () =
  let libs = Workloads.Codegen_gen.libraries () in
  Alcotest.(check int) "five libraries" 5 (List.length libs);
  List.iter
    (fun (path, (o : Sof.Object_file.t)) ->
      Alcotest.(check bool) (path ^ " has exports") true
        (Sof.Object_file.exported o <> []))
    libs

(* -- dataset -------------------------------------------------------------------- *)

let test_dataset () =
  let fs = Simos.Fs.create () in
  Workloads.Dataset.install ~many_entries:10 fs;
  Alcotest.(check int) "single-entry dir" 1
    (List.length (Simos.Fs.list_dir fs Workloads.Dataset.dir_single));
  let many = Simos.Fs.list_dir fs Workloads.Dataset.dir_many in
  Alcotest.(check bool) "many entries" true (List.length many >= 12);
  Alcotest.(check bool) "inputs exist" true (Simos.Fs.exists fs "/input/a")

let () =
  Alcotest.run "workloads"
    [
      ( "libc",
        [
          Alcotest.test_case "sections compile" `Quick test_libc_sections_compile;
          Alcotest.test_case "merges clean" `Quick test_libc_merges_without_conflict;
          Alcotest.test_case "realistic size" `Quick test_libc_size_realistic;
          Alcotest.test_case "string functions" `Quick test_libc_string_functions;
          Alcotest.test_case "putint negative" `Quick test_libc_putint_negative;
          Alcotest.test_case "split objects" `Quick test_libc_split_objects;
        ] );
      ( "ls",
        [
          Alcotest.test_case "single dir" `Quick test_ls_single_dir;
          Alcotest.test_case "flags" `Quick test_ls_flags;
          Alcotest.test_case "missing dir" `Quick test_ls_missing_dir;
          Alcotest.test_case "-laF work factor" `Quick test_ls_laf_does_more_work;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "dimensions" `Quick test_codegen_dimensions;
          Alcotest.test_case "runs deterministically" `Quick test_codegen_runs_and_is_deterministic;
          Alcotest.test_case "reads inputs" `Quick test_codegen_reads_inputs;
          Alcotest.test_case "aux libraries" `Quick test_aux_libraries;
        ] );
      ("dataset", [ Alcotest.test_case "install" `Quick test_dataset ]);
    ]
