(* Tests of the link engine: layout, resolution, relocation application
   (verified by actually executing linked images on the SVM), external
   images, and partial links. *)

let layout = { Linker.Link.text_base = 0x1000; data_base = 0x8000 }

(* Fragment: _start calls f, stores result to `out`, halts. *)
let main_frag () =
  let a = Sof.Asm.create "main.o" in
  Sof.Asm.label a "_start";
  Sof.Asm.call a "f";
  Sof.Asm.lea a 2 "out";
  Sof.Asm.instr a (Svm.Isa.St (2, 0, 0l));
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.data_label a "out";
  Sof.Asm.data_word a 0l;
  Sof.Asm.finish a

(* Fragment: f returns g() + constant from its own data. *)
let f_frag () =
  let a = Sof.Asm.create "f.o" in
  Sof.Asm.label a "f";
  Sof.Asm.instrs a
    [ Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, -4l);
      Svm.Isa.St (Svm.Isa.reg_sp, Svm.Isa.reg_ra, 0l) ];
  Sof.Asm.call a "g";
  Sof.Asm.lea a 2 "f_const";
  Sof.Asm.instrs a
    [ Svm.Isa.Ld (2, 2, 0l); Svm.Isa.Add (0, 0, 2);
      Svm.Isa.Ld (Svm.Isa.reg_ra, Svm.Isa.reg_sp, 0l);
      Svm.Isa.Addi (Svm.Isa.reg_sp, Svm.Isa.reg_sp, 4l); Svm.Isa.Ret ];
  Sof.Asm.data_label a ~binding:Sof.Symbol.Local "f_const";
  Sof.Asm.data_word a 10l;
  Sof.Asm.finish a

let g_frag () =
  let a = Sof.Asm.create "g.o" in
  Sof.Asm.label a "g";
  Sof.Asm.instrs a [ Svm.Isa.Movi (0, 32l); Svm.Isa.Ret ];
  Sof.Asm.finish a

let run_image (img : Linker.Image.t) =
  let mem, buf = Svm.Cpu.flat_mem 0x20000 in
  Linker.Image.load_into_flat img buf;
  let cpu = Svm.Cpu.create mem in
  Svm.Cpu.set_reg cpu Svm.Isa.reg_sp 0x1F000l;
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  ignore (Svm.Cpu.run ~fuel:10_000 cpu);
  cpu

let test_link_and_run () =
  let img, stats =
    Linker.Link.link ~layout [ main_frag (); f_frag (); g_frag () ]
  in
  Alcotest.(check int) "three fragments" 3 stats.Linker.Link.fragments;
  Alcotest.(check bool) "entry found" true (img.Linker.Image.entry = 0x1000);
  let cpu = run_image img in
  let out_addr = Option.get (Linker.Image.find_symbol img "out") in
  Alcotest.(check int32) "g()+10 stored" 42l (cpu.Svm.Cpu.mem.Svm.Cpu.load32 out_addr)

let test_undefined_raises () =
  try
    ignore (Linker.Link.link ~layout [ main_frag (); f_frag () ]);
    Alcotest.fail "expected undefined g"
  with Linker.Link.Link_error (Linker.Link.Undefined [ "g" ]) -> ()

let test_allow_undefined () =
  let _, stats =
    Linker.Link.link ~layout ~allow_undefined:true [ main_frag (); f_frag () ]
  in
  Alcotest.(check (list string)) "g reported" [ "g" ] stats.Linker.Link.undefined

let test_duplicate_global_raises () =
  try
    ignore (Linker.Link.link ~layout [ g_frag (); g_frag () ]);
    Alcotest.fail "expected duplicate"
  with Linker.Link.Link_error (Linker.Link.Duplicate ("g", _, _)) -> ()

let test_weak_loses_to_global () =
  let weak_g =
    let a = Sof.Asm.create "weak_g.o" in
    Sof.Asm.label a ~binding:Sof.Symbol.Weak "g";
    Sof.Asm.instrs a [ Svm.Isa.Movi (0, 1l); Svm.Isa.Ret ];
    Sof.Asm.finish a
  in
  let img, _ = Linker.Link.link ~layout [ main_frag (); f_frag (); weak_g; g_frag () ] in
  let cpu = run_image img in
  let out_addr = Option.get (Linker.Image.find_symbol img "out") in
  Alcotest.(check int32) "strong g used" 42l (cpu.Svm.Cpu.mem.Svm.Cpu.load32 out_addr)

let test_weak_used_when_alone () =
  let weak_g =
    let a = Sof.Asm.create "weak_g.o" in
    Sof.Asm.label a ~binding:Sof.Symbol.Weak "g";
    Sof.Asm.instrs a [ Svm.Isa.Movi (0, 5l); Svm.Isa.Ret ];
    Sof.Asm.finish a
  in
  let img, _ = Linker.Link.link ~layout [ main_frag (); f_frag (); weak_g ] in
  let cpu = run_image img in
  let out_addr = Option.get (Linker.Image.find_symbol img "out") in
  Alcotest.(check int32) "weak g used" 15l (cpu.Svm.Cpu.mem.Svm.Cpu.load32 out_addr)

let test_local_resolution_is_per_fragment () =
  (* two fragments each with a Local `c` data word holding different
     values; each fragment's reader must see its own *)
  let frag tag value =
    let a = Sof.Asm.create (tag ^ ".o") in
    Sof.Asm.label a ("read_" ^ tag);
    Sof.Asm.lea a 2 "c";
    Sof.Asm.instrs a [ Svm.Isa.Ld (0, 2, 0l); Svm.Isa.Ret ];
    Sof.Asm.data_label a ~binding:Sof.Symbol.Local "c";
    Sof.Asm.data_word a value;
    Sof.Asm.finish a
  in
  let main =
    let a = Sof.Asm.create "m.o" in
    Sof.Asm.label a "_start";
    Sof.Asm.call a "read_a";
    Sof.Asm.instr a (Svm.Isa.Mov (5, 0));
    Sof.Asm.call a "read_b";
    Sof.Asm.instr a (Svm.Isa.Add (6, 5, 0));
    Sof.Asm.instr a Svm.Isa.Halt;
    Sof.Asm.finish a
  in
  let img, _ = Linker.Link.link ~layout [ main; frag "a" 100l; frag "b" 23l ] in
  let cpu = run_image img in
  Alcotest.(check int32) "a's c" 100l (Svm.Cpu.get_reg cpu 5);
  Alcotest.(check int32) "sum" 123l (Svm.Cpu.get_reg cpu 6)

let test_external_image_binding () =
  (* link the library alone, then link a client against the positioned
     library image: the self-contained shared library path *)
  let lib_img, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x100000; data_base = 0x140000 }
      [ f_frag (); g_frag () ]
  in
  let img, _ = Linker.Link.link ~layout ~externals:[ lib_img ] [ main_frag () ] in
  (* execute with both images loaded *)
  let mem, buf = Svm.Cpu.flat_mem 0x200000 in
  Linker.Image.load_into_flat lib_img buf;
  Linker.Image.load_into_flat img buf;
  let cpu = Svm.Cpu.create mem in
  Svm.Cpu.set_reg cpu Svm.Isa.reg_sp 0x1F000l;
  cpu.Svm.Cpu.pc <- img.Linker.Image.entry;
  ignore (Svm.Cpu.run ~fuel:10_000 cpu);
  let out_addr = Option.get (Linker.Image.find_symbol img "out") in
  Alcotest.(check int32) "bound across images" 42l (cpu.Svm.Cpu.mem.Svm.Cpu.load32 out_addr)

let test_reloc_work_counted () =
  let _, stats = Linker.Link.link ~layout [ main_frag (); f_frag (); g_frag () ] in
  (* main: call f, lea out; f: call g, lea f_const = 4 relocations *)
  Alcotest.(check int) "reloc work" 4 stats.Linker.Link.relocs_applied

let test_entry_fallback_to_main () =
  let m =
    let a = Sof.Asm.create "onlymain.o" in
    Sof.Asm.label a "main";
    Sof.Asm.instr a Svm.Isa.Halt;
    Sof.Asm.finish a
  in
  let img, _ = Linker.Link.link ~layout [ m ] in
  Alcotest.(check int) "entry=main" 0x1000 img.Linker.Image.entry

let test_image_extent_and_digest () =
  let img, _ = Linker.Link.link ~layout [ main_frag (); f_frag (); g_frag () ] in
  let lo, hi = Linker.Image.extent img in
  Alcotest.(check int) "lo" 0x1000 lo;
  Alcotest.(check bool) "hi past data" true (hi > 0x8000);
  let img2, _ = Linker.Link.link ~layout [ main_frag (); f_frag (); g_frag () ] in
  Alcotest.(check string) "digest deterministic" (Linker.Image.digest img)
    (Linker.Image.digest img2);
  let img3, _ =
    Linker.Link.link ~layout:{ Linker.Link.text_base = 0x2000; data_base = 0x8000 }
      [ main_frag (); f_frag (); g_frag () ]
  in
  Alcotest.(check bool) "placement is identity" true
    (Linker.Image.digest img <> Linker.Image.digest img3)

(* -- combine (partial link) -------------------------------------------- *)

let test_combine_then_link () =
  let lib = Linker.Link.combine ~name:"lib.o" [ f_frag (); g_frag () ] in
  Alcotest.(check bool) "f exported" true (Sof.Object_file.defines lib "f");
  Alcotest.(check bool) "g exported" true (Sof.Object_file.defines lib "g");
  (* internal ref f->g is preserved symbolically *)
  let img, _ = Linker.Link.link ~layout [ main_frag (); lib ] in
  let cpu = run_image img in
  let out_addr = Option.get (Linker.Image.find_symbol img "out") in
  Alcotest.(check int32) "combined lib works" 42l (cpu.Svm.Cpu.mem.Svm.Cpu.load32 out_addr)

let test_combine_mangles_locals () =
  (* two fragments with same-named locals must not collide *)
  let frag tag value =
    let a = Sof.Asm.create (tag ^ ".o") in
    Sof.Asm.label a ("get_" ^ tag);
    Sof.Asm.lea a 2 "secret";
    Sof.Asm.instrs a [ Svm.Isa.Ld (0, 2, 0l); Svm.Isa.Ret ];
    Sof.Asm.data_label a ~binding:Sof.Symbol.Local "secret";
    Sof.Asm.data_word a value;
    Sof.Asm.finish a
  in
  let lib = Linker.Link.combine ~name:"two.o" [ frag "a" 1l; frag "b" 2l ] in
  let main =
    let a = Sof.Asm.create "m.o" in
    Sof.Asm.label a "_start";
    Sof.Asm.call a "get_a";
    Sof.Asm.instr a (Svm.Isa.Mov (5, 0));
    Sof.Asm.call a "get_b";
    Sof.Asm.instr a (Svm.Isa.Mov (6, 0));
    Sof.Asm.instr a Svm.Isa.Halt;
    Sof.Asm.finish a
  in
  let img, _ = Linker.Link.link ~layout [ main; lib ] in
  let cpu = run_image img in
  Alcotest.(check int32) "a sees 1" 1l (Svm.Cpu.get_reg cpu 5);
  Alcotest.(check int32) "b sees 2" 2l (Svm.Cpu.get_reg cpu 6)

let test_combine_preserves_ctors () =
  let a = Sof.Asm.create "c1.o" in
  Sof.Asm.label a "init_x";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.ctor a "init_x";
  let c1 = Sof.Asm.finish a in
  let b = Sof.Asm.create "c2.o" in
  Sof.Asm.label b "init_y";
  Sof.Asm.instr b Svm.Isa.Ret;
  Sof.Asm.ctor b "init_y";
  let c2 = Sof.Asm.finish b in
  let lib = Linker.Link.combine ~name:"lib.o" [ c1; c2 ] in
  Alcotest.(check (list string)) "ctors in order" [ "init_x"; "init_y" ]
    lib.Sof.Object_file.ctors

let test_combine_is_associative_behaviour () =
  (* combine [a;b;c] behaves like combine [combine [a;b]; c] when linked *)
  let frags () = [ main_frag (); f_frag (); g_frag () ] in
  let all = Linker.Link.combine ~name:"all.o" (frags ()) in
  let ab =
    match frags () with
    | [ a; b; c ] -> Linker.Link.combine ~name:"abc.o" [ Linker.Link.combine ~name:"ab.o" [ a; b ]; c ]
    | _ -> assert false
  in
  let img1, _ = Linker.Link.link ~layout [ all ] in
  let img2, _ = Linker.Link.link ~layout [ ab ] in
  let run img =
    let cpu = run_image img in
    cpu.Svm.Cpu.mem.Svm.Cpu.load32 (Option.get (Linker.Image.find_symbol img "out"))
  in
  Alcotest.(check int32) "same behaviour" (run img1) (run img2)

(* -- properties --------------------------------------------------------- *)

let prop_layout_no_symbol_below_base =
  QCheck.Test.make ~count:50 ~name:"all symbols placed at/above their base"
    (QCheck.int_range 1 40)
    (fun n ->
      let frags =
        List.init n (fun i ->
            let a = Sof.Asm.create (Printf.sprintf "f%d.o" i) in
            Sof.Asm.label a (Printf.sprintf "fn%d" i);
            Sof.Asm.instr a Svm.Isa.Ret;
            Sof.Asm.data_label a (Printf.sprintf "d%d" i);
            Sof.Asm.data_word a (Int32.of_int i);
            Sof.Asm.finish a)
      in
      let img, _ =
        Linker.Link.link ~layout:{ Linker.Link.text_base = 0x4000; data_base = 0x40000 } frags
      in
      List.for_all (fun (_, addr) -> addr >= 0x4000) img.Linker.Image.symtab)

let () =
  Alcotest.run "linker"
    [
      ( "link",
        [
          Alcotest.test_case "link and run" `Quick test_link_and_run;
          Alcotest.test_case "undefined raises" `Quick test_undefined_raises;
          Alcotest.test_case "allow undefined" `Quick test_allow_undefined;
          Alcotest.test_case "duplicate raises" `Quick test_duplicate_global_raises;
          Alcotest.test_case "weak loses" `Quick test_weak_loses_to_global;
          Alcotest.test_case "weak alone" `Quick test_weak_used_when_alone;
          Alcotest.test_case "local per fragment" `Quick test_local_resolution_is_per_fragment;
          Alcotest.test_case "external image" `Quick test_external_image_binding;
          Alcotest.test_case "reloc work" `Quick test_reloc_work_counted;
          Alcotest.test_case "entry fallback" `Quick test_entry_fallback_to_main;
          Alcotest.test_case "extent and digest" `Quick test_image_extent_and_digest;
        ] );
      ( "combine",
        [
          Alcotest.test_case "combine then link" `Quick test_combine_then_link;
          Alcotest.test_case "mangles locals" `Quick test_combine_mangles_locals;
          Alcotest.test_case "preserves ctors" `Quick test_combine_preserves_ctors;
          Alcotest.test_case "nesting" `Quick test_combine_is_associative_behaviour;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_layout_no_symbol_below_base ]);
    ]
