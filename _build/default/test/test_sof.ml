(* Tests of the SOF object format: validation, codec round-trips,
   symbol queries, the assembler, and namespace views. *)

let sym = Sof.Symbol.make

let simple_object () =
  let a = Sof.Asm.create "t.o" in
  Sof.Asm.label a "f";
  Sof.Asm.instr a (Svm.Isa.Movi (1, 5l));
  Sof.Asm.call a "g";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.label a ~binding:Sof.Symbol.Local "f_local";
  Sof.Asm.instr a Svm.Isa.Halt;
  Sof.Asm.data_label a "counter";
  Sof.Asm.data_word a 7l;
  Sof.Asm.bss a "buffer" 64;
  Sof.Asm.finish a

(* -- object file basics ------------------------------------------------ *)

let test_sections () =
  let o = simple_object () in
  Alcotest.(check int) "text" (4 * Svm.Isa.width) (Bytes.length o.Sof.Object_file.text);
  Alcotest.(check int) "data" 4 (Bytes.length o.Sof.Object_file.data);
  Alcotest.(check int) "bss" 64 o.Sof.Object_file.bss_size

let test_exported_and_undefined () =
  let o = simple_object () in
  let exported = List.map (fun (s : Sof.Symbol.t) -> s.name) (Sof.Object_file.exported o) in
  Alcotest.(check (list string)) "exports" [ "f"; "counter"; "buffer" ] exported;
  Alcotest.(check (list string)) "undefined" [ "g" ] (Sof.Object_file.undefined o)

let test_defines () =
  let o = simple_object () in
  Alcotest.(check bool) "defines f" true (Sof.Object_file.defines o "f");
  Alcotest.(check bool) "defines local" true (Sof.Object_file.defines o "f_local");
  Alcotest.(check bool) "not g" false (Sof.Object_file.defines o "g")

let test_reloc_counts () =
  let o = simple_object () in
  Alcotest.(check int) "relocs" 1 (Sof.Object_file.reloc_count o);
  Alcotest.(check int) "external relocs" 1 (Sof.Object_file.external_reloc_count o)

let test_find_exported_weak_vs_global () =
  let o =
    Sof.Object_file.make ~name:"w.o" ~text:(Svm.Encode.assemble [ Svm.Isa.Halt; Svm.Isa.Halt ])
      [
        sym ~binding:Sof.Symbol.Weak ~kind:Sof.Symbol.Text ~value:0 "x";
        sym ~binding:Sof.Symbol.Global ~kind:Sof.Symbol.Text ~value:8 "x";
      ]
  in
  match Sof.Object_file.find_exported o "x" with
  | Some s ->
      Alcotest.(check bool) "global wins" true (s.Sof.Symbol.binding = Sof.Symbol.Global);
      Alcotest.(check int) "value" 8 s.Sof.Symbol.value
  | None -> Alcotest.fail "x not found"

(* -- validation -------------------------------------------------------- *)

let expect_invalid f =
  try
    ignore (f ());
    Alcotest.fail "expected Object_file.Invalid"
  with Sof.Object_file.Invalid _ -> ()

let test_validate_sym_range () =
  expect_invalid (fun () ->
      Sof.Object_file.make ~name:"bad.o" ~text:Bytes.empty
        [ sym ~kind:Sof.Symbol.Text ~value:100 "f" ])

let test_validate_reloc_range () =
  expect_invalid (fun () ->
      Sof.Object_file.make ~name:"bad.o"
        ~text:(Svm.Encode.assemble [ Svm.Isa.Halt ])
        ~relocs:[ Sof.Reloc.make ~target:Sof.Reloc.In_text ~offset:100 ~kind:Sof.Reloc.Abs32 "g" ]
        [ Sof.Symbol.undef "g" ])

let test_validate_reloc_alignment () =
  (* a text reloc not on an immediate field is rejected *)
  expect_invalid (fun () ->
      Sof.Object_file.make ~name:"bad.o"
        ~text:(Svm.Encode.assemble [ Svm.Isa.Halt ])
        ~relocs:[ Sof.Reloc.make ~target:Sof.Reloc.In_text ~offset:0 ~kind:Sof.Reloc.Abs32 "g" ]
        [ Sof.Symbol.undef "g" ])

let test_validate_unknown_reloc_symbol () =
  expect_invalid (fun () ->
      Sof.Object_file.make ~name:"bad.o"
        ~text:(Svm.Encode.assemble [ Svm.Isa.Call 0l ])
        ~relocs:[ Sof.Reloc.make ~target:Sof.Reloc.In_text ~offset:4 ~kind:Sof.Reloc.Abs32 "nowhere" ]
        [])

let test_validate_text_alignment () =
  expect_invalid (fun () ->
      Sof.Object_file.make ~name:"bad.o" ~text:(Bytes.create 5) [])

(* -- codec ------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let o = simple_object () in
  let o' = Sof.Codec.decode (Sof.Codec.encode o) in
  Alcotest.(check string) "name" o.Sof.Object_file.name o'.Sof.Object_file.name;
  Alcotest.(check bool) "text" true (Bytes.equal o.Sof.Object_file.text o'.Sof.Object_file.text);
  Alcotest.(check bool) "data" true (Bytes.equal o.Sof.Object_file.data o'.Sof.Object_file.data);
  Alcotest.(check int) "bss" o.Sof.Object_file.bss_size o'.Sof.Object_file.bss_size;
  Alcotest.(check bool) "symbols" true
    (List.for_all2 Sof.Symbol.equal o.Sof.Object_file.symbols o'.Sof.Object_file.symbols);
  Alcotest.(check bool) "relocs" true
    (List.for_all2 Sof.Reloc.equal o.Sof.Object_file.relocs o'.Sof.Object_file.relocs)

let test_codec_bad_magic () =
  let b = Bytes.of_string "NOPE everything else" in
  try
    ignore (Sof.Codec.decode b);
    Alcotest.fail "expected Decode_error"
  with Sof.Codec.Decode_error _ -> ()

let test_codec_truncated () =
  let o = simple_object () in
  let full = Sof.Codec.encode o in
  let cut = Bytes.sub full 0 (Bytes.length full - 5) in
  try
    ignore (Sof.Codec.decode cut);
    Alcotest.fail "expected Decode_error"
  with Sof.Codec.Decode_error _ -> ()

let test_digest_stability () =
  let d1 = Sof.Codec.digest (simple_object ()) in
  let d2 = Sof.Codec.digest (simple_object ()) in
  Alcotest.(check string) "same content, same digest" d1 d2;
  let other = Sof.Object_file.empty "other" in
  Alcotest.(check bool) "different content, different digest" true
    (d1 <> Sof.Codec.digest other)

(* -- assembler --------------------------------------------------------- *)

let test_asm_data_string_alignment () =
  let a = Sof.Asm.create "s.o" in
  Sof.Asm.data_string a "ab";
  Sof.Asm.data_label a "w";
  Sof.Asm.data_word a 1l;
  let o = Sof.Asm.finish a in
  (match Sof.Object_file.find_symbol o "w" with
  | Some s -> Alcotest.(check int) "aligned" 0 (s.Sof.Symbol.value mod 4)
  | None -> Alcotest.fail "w missing");
  Alcotest.(check int) "data size" 8 (Bytes.length o.Sof.Object_file.data)

let test_asm_bss_alignment () =
  let a = Sof.Asm.create "b.o" in
  Sof.Asm.bss a "x" 3;
  Sof.Asm.bss a "y" 10;
  let o = Sof.Asm.finish a in
  (match Sof.Object_file.find_symbol o "y" with
  | Some s -> Alcotest.(check int) "y at 4" 4 s.Sof.Symbol.value
  | None -> Alcotest.fail "y missing");
  Alcotest.(check int) "total" 16 o.Sof.Object_file.bss_size

let test_asm_ctors () =
  let a = Sof.Asm.create "c.o" in
  Sof.Asm.label a "ctor_a";
  Sof.Asm.instr a Svm.Isa.Ret;
  Sof.Asm.ctor a "ctor_a";
  let o = Sof.Asm.finish a in
  Alcotest.(check (list string)) "ctors" [ "ctor_a" ] o.Sof.Object_file.ctors

let test_asm_data_word_sym () =
  let a = Sof.Asm.create "p.o" in
  Sof.Asm.data_label a "ptr";
  Sof.Asm.data_word_sym a "target";
  let o = Sof.Asm.finish a in
  (match o.Sof.Object_file.relocs with
  | [ r ] ->
      Alcotest.(check string) "sym" "target" r.Sof.Reloc.symbol;
      Alcotest.(check bool) "in data" true (r.Sof.Reloc.target = Sof.Reloc.In_data)
  | _ -> Alcotest.fail "one reloc expected");
  Alcotest.(check (list string)) "target undefined" [ "target" ]
    (Sof.Object_file.undefined o)

(* -- views ------------------------------------------------------------- *)

let test_view_rename_defs_only () =
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o)
      (Sof.View.Rename_defs (fun n -> if n = "f" then Some "f2" else None))
  in
  let o' = Sof.View.materialize v in
  Alcotest.(check bool) "f2 defined" true (Sof.Object_file.defines o' "f2");
  Alcotest.(check bool) "f gone" false (Sof.Object_file.defines o' "f")

let test_view_rename_refs () =
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o)
      (Sof.View.Rename_refs (fun n -> if n = "g" then Some "g2" else None))
  in
  let o' = Sof.View.materialize v in
  Alcotest.(check (list string)) "refs renamed" [ "g2" ] (Sof.Object_file.undefined o')

let test_view_undefine () =
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o)
      (Sof.View.Undefine (fun n -> n = "f"))
  in
  let o' = Sof.View.materialize v in
  Alcotest.(check bool) "f removed" false (Sof.Object_file.defines o' "f")

let test_view_localize () =
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o) (Sof.View.Localize (fun n -> n = "f")) in
  let o' = Sof.View.materialize v in
  (match Sof.Object_file.find_symbol o' "f" with
  | Some s -> Alcotest.(check bool) "local" true (s.Sof.Symbol.binding = Sof.Symbol.Local)
  | None -> Alcotest.fail "f missing");
  Alcotest.(check bool) "not exported" true (Sof.Object_file.find_exported o' "f" = None)

let test_view_copy_defs () =
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o)
      (Sof.View.Copy_defs (fun n -> if n = "f" then Some "alias_f" else None))
  in
  let o' = Sof.View.materialize v in
  Alcotest.(check bool) "original kept" true (Sof.Object_file.defines o' "f");
  Alcotest.(check bool) "alias added" true (Sof.Object_file.defines o' "alias_f");
  let f = Option.get (Sof.Object_file.find_symbol o' "f") in
  let a = Option.get (Sof.Object_file.find_symbol o' "alias_f") in
  Alcotest.(check int) "same value" f.Sof.Symbol.value a.Sof.Symbol.value

let test_view_shares_bytes () =
  (* materialization must not copy section bytes: that is the point of
     views (cheap incremental namespace modification) *)
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o)
      (Sof.View.Rename_defs (fun n -> if n = "f" then Some "f2" else None))
  in
  let o' = Sof.View.materialize v in
  Alcotest.(check bool) "text physically shared" true
    (o.Sof.Object_file.text == o'.Sof.Object_file.text)

let test_view_layering_order () =
  (* rename f->a then a->b: both layers must apply in order *)
  let o = simple_object () in
  let v = Sof.View.of_object o in
  let v = Sof.View.push v (Sof.View.Rename_defs (fun n -> if n = "f" then Some "a" else None)) in
  let v = Sof.View.push v (Sof.View.Rename_defs (fun n -> if n = "a" then Some "b" else None)) in
  let o' = Sof.View.materialize v in
  Alcotest.(check bool) "b defined" true (Sof.Object_file.defines o' "b");
  Alcotest.(check bool) "a gone" false (Sof.Object_file.defines o' "a")

let test_view_cache () =
  let o = simple_object () in
  let v = Sof.View.of_object o in
  let m1 = Sof.View.materialize v in
  let m2 = Sof.View.materialize v in
  Alcotest.(check bool) "cached" true (m1 == m2)

let test_view_undefine_then_copy_normalizes () =
  (* undefine f: reloc to g remains; g should have exactly one undef entry *)
  let o = simple_object () in
  let v = Sof.View.push (Sof.View.of_object o) (Sof.View.Undefine (fun _ -> true)) in
  let o' = Sof.View.materialize v in
  let undefs =
    List.filter (fun (s : Sof.Symbol.t) -> s.kind = Sof.Symbol.Undef)
      o'.Sof.Object_file.symbols
  in
  let names = List.map (fun (s : Sof.Symbol.t) -> s.name) undefs in
  Alcotest.(check (list string)) "single undef per name" (List.sort_uniq compare names)
    (List.sort compare names)

(* -- properties -------------------------------------------------------- *)

let arb_name = QCheck.(string_gen_of_size (Gen.int_range 1 8) Gen.printable)

let prop_codec_roundtrip_symbols =
  QCheck.Test.make ~count:200 ~name:"codec roundtrips arbitrary symbol names"
    arb_name (fun name ->
      QCheck.assume (name <> "");
      let o =
        Sof.Object_file.make ~name:"p.o" ~text:Bytes.empty
          [ sym ~kind:Sof.Symbol.Abs ~value:7 name ]
      in
      let o' = Sof.Codec.decode (Sof.Codec.encode o) in
      match Sof.Object_file.find_symbol o' name with
      | Some s -> s.Sof.Symbol.value = 7
      | None -> false)

let prop_view_rename_is_involutive_when_swapped =
  QCheck.Test.make ~count:100 ~name:"rename f->tmp->f restores namespace" QCheck.unit
    (fun () ->
      let o = simple_object () in
      let v = Sof.View.of_object o in
      let v = Sof.View.push v (Sof.View.Rename_defs (fun n -> if n = "f" then Some "tmp_q" else None)) in
      let v = Sof.View.push v (Sof.View.Rename_defs (fun n -> if n = "tmp_q" then Some "f" else None)) in
      let o' = Sof.View.materialize v in
      Sof.Object_file.defines o' "f" && not (Sof.Object_file.defines o' "tmp_q"))

let () =
  Alcotest.run "sof"
    [
      ( "object_file",
        [
          Alcotest.test_case "sections" `Quick test_sections;
          Alcotest.test_case "exports/undefined" `Quick test_exported_and_undefined;
          Alcotest.test_case "defines" `Quick test_defines;
          Alcotest.test_case "reloc counts" `Quick test_reloc_counts;
          Alcotest.test_case "weak vs global" `Quick test_find_exported_weak_vs_global;
        ] );
      ( "validate",
        [
          Alcotest.test_case "symbol range" `Quick test_validate_sym_range;
          Alcotest.test_case "reloc range" `Quick test_validate_reloc_range;
          Alcotest.test_case "reloc alignment" `Quick test_validate_reloc_alignment;
          Alcotest.test_case "unknown reloc symbol" `Quick test_validate_unknown_reloc_symbol;
          Alcotest.test_case "text alignment" `Quick test_validate_text_alignment;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_codec_bad_magic;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "digest stability" `Quick test_digest_stability;
        ] );
      ( "asm",
        [
          Alcotest.test_case "string alignment" `Quick test_asm_data_string_alignment;
          Alcotest.test_case "bss alignment" `Quick test_asm_bss_alignment;
          Alcotest.test_case "ctors" `Quick test_asm_ctors;
          Alcotest.test_case "data word sym" `Quick test_asm_data_word_sym;
        ] );
      ( "view",
        [
          Alcotest.test_case "rename defs" `Quick test_view_rename_defs_only;
          Alcotest.test_case "rename refs" `Quick test_view_rename_refs;
          Alcotest.test_case "undefine" `Quick test_view_undefine;
          Alcotest.test_case "localize" `Quick test_view_localize;
          Alcotest.test_case "copy defs" `Quick test_view_copy_defs;
          Alcotest.test_case "shares bytes" `Quick test_view_shares_bytes;
          Alcotest.test_case "layering order" `Quick test_view_layering_order;
          Alcotest.test_case "materialize cache" `Quick test_view_cache;
          Alcotest.test_case "normalize undefs" `Quick test_view_undefine_then_copy_normalizes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_codec_roundtrip_symbols; prop_view_rename_is_involutive_when_swapped ] );
    ]
