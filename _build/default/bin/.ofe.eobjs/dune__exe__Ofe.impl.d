bin/ofe.ml: Arg Buffer Bytes Cmd Cmdliner Format Jigsaw List Minic Printf Sof String Svm Term
