bin/omos_demo.ml: Arg Cmd Cmdliner Format List Omos Printf Simos Term
