bin/ofe.mli:
