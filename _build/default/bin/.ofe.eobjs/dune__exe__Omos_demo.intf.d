bin/omos_demo.mli:
